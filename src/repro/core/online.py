"""Online-QEC simulation: streaming decode under a finite decoder clock.

This drives the experiment of Section V-B / Fig. 7.  Every measurement
interval (1 us in the paper) a new syndrome layer arrives; the decoder,
clocked at ``frequency_hz``, gets ``frequency_hz * interval`` execution
cycles between arrivals.  Detection events are pushed into the Units'
7-bit ``Reg`` queues; if a layer arrives while the queue is full the
trial is an **overflow failure** ("If Reg overflows because of the slow
QEC performance, the trial is considered as a failure").

Corrections are applied *physically* to the data qubits between rounds —
that is the point of online-QEC — and the decoder compensates its own
corrections out of the next round's detection events (the ``sendSyndrome``
feedback path of Algorithm 1): the event layer pushed for round ``t`` is

    raw_syndrome(t) XOR raw_syndrome(t-1) XOR H . corrections(t-1 -> t)

After the last noisy round a final perfectly-measured round is appended
and the engine drains (``thv`` wait lifted); the trial is a logical
failure if the residual error crosses the west-east cut.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.core.engine import IDLE, QecoolEngine
from repro.core.engine_batch import (
    LANE_SUSPENDED,
    QecoolEngineBatch,
)
from repro.decoders.base import Match, correction_from_matches
from repro.surface_code.lattice import PlanarLattice
from repro.surface_code.logical import logical_failure, logical_failures_batch
from repro.surface_code.noise import NoiseModel, PhenomenologicalNoise
from repro.util.rng import make_rng

__all__ = [
    "BATCH_ENGINE_CUTOFF",
    "OnlineConfig",
    "OnlineOutcome",
    "OnlineShot",
    "StreamingBlock",
    "StreamingRoster",
    "StreamingShotState",
    "advance_streaming_round",
    "run_online_chunk",
    "run_online_trial",
]

BATCH_ENGINE_CUTOFF = 2
"""Minimum chunk size for the shot-major batch engine; below it the
scalar engine's per-shot path is cheaper (single-lane batches pay the
lock-step machinery without amortising it)."""


@dataclass(frozen=True)
class OnlineConfig:
    """Operating point of the online decoder.

    ``frequency_hz=None`` models an unconstrained clock (used for
    Table III, which measures cycles per layer rather than real-time
    feasibility).
    """

    frequency_hz: float | None = 2.0e9
    measurement_interval_s: float = 1.0e-6
    thv: int = 3
    reg_size: int = 7
    kernel_backend: str | None = None
    """Engine-kernel backend name (:mod:`repro.core.kernels`);
    ``None`` uses the process default."""

    @property
    def cycles_per_interval(self) -> float:
        """Decoder cycles available between measurement arrivals."""
        if self.frequency_hz is None:
            return math.inf
        return self.frequency_hz * self.measurement_interval_s


@dataclass
class OnlineOutcome:
    """Result of one online trial."""

    failed: bool
    overflow: bool
    layer_cycles: list[int] = field(default_factory=list)
    matches: list[Match] = field(default_factory=list)
    n_rounds: int = 0

    @property
    def logical_failed(self) -> bool:
        """Failure excluding overflow (pure matching-quality failures)."""
        return self.failed and not self.overflow


def _resolve_trial_noise(p: float | NoiseModel, q: float | None) -> NoiseModel:
    if isinstance(p, NoiseModel):
        if q is not None:
            raise ValueError("q is part of the noise model; pass one or the other")
        return p
    return PhenomenologicalNoise(p, q)


def run_online_trial(
    lattice: PlanarLattice,
    p: float | NoiseModel,
    n_rounds: int,
    config: OnlineConfig = OnlineConfig(),
    rng: np.random.Generator | int | None = None,
    q: float | None = None,
    engine_factory: Callable[..., QecoolEngine] | None = None,
) -> OnlineOutcome:
    """Run one online-QEC trial of ``n_rounds`` noisy measurement rounds.

    ``p`` is either the phenomenological data-flip rate (with ``q`` the
    optional measurement rate, defaulting to ``p``) or any
    :class:`~repro.surface_code.noise.NoiseModel` — round-dependent
    models such as ``drift`` are sampled with the trial's round index.
    Returns an :class:`OnlineOutcome`; ``failed`` is True on Reg overflow
    or on a residual logical error after the final drain.

    ``engine_factory`` swaps in an alternative engine implementation
    with the ``QecoolEngine`` constructor/generator contract — used by
    ``benchmarks/bench_engine.py`` to race the array-native engine
    against the frozen pre-rewrite baseline on identical trials.

    Monte-Carlo points batch trials across a chunk with
    :func:`run_online_chunk` instead (bit-identical outcomes).
    """
    if n_rounds < 1:
        raise ValueError(f"n_rounds must be >= 1, got {n_rounds}")
    rng = make_rng(rng)
    noise = _resolve_trial_noise(p, q)
    if engine_factory is None:
        engine = QecoolEngine(
            lattice, thv=config.thv, reg_size=config.reg_size,
            kernel_backend=config.kernel_backend,
        )
    else:
        # Alternative engines (frozen baselines) predate the kernel
        # registry; keep their constructor contract untouched.
        engine = engine_factory(
            lattice, thv=config.thv, reg_size=config.reg_size
        )
    budget = config.cycles_per_interval
    # With no cycle deadline the decode between rounds always runs to
    # IDLE, so the engine can advance synchronously (no generator); a
    # finite clock needs run()'s resumable cycle stream.  The baseline
    # engine hook predates run_to_idle, so it always takes the
    # generator path.
    unconstrained = math.isinf(budget) and hasattr(engine, "run_to_idle")
    gen = None if unconstrained else engine.run(drain=False)

    # Per-trial scratch, allocated once and reused across rounds.
    error = np.zeros(lattice.n_data, dtype=np.uint8)
    prev_raw = np.zeros(lattice.n_ancillas, dtype=np.uint8)
    compensation = np.zeros(lattice.n_ancillas, dtype=np.uint8)
    events_row = np.empty(lattice.n_ancillas, dtype=np.uint8)
    wall = 0.0  # decoder-cycle wall clock
    consumed_matches = 0

    for k in range(n_rounds + 1):
        final_round = k == n_rounds
        if final_round:
            raw = lattice.syndrome_of(error)
        else:
            data_flips, meas_flips = noise.sample_round(lattice, rng, t=k, n_rounds=n_rounds)
            error ^= data_flips
            raw = lattice.syndrome_of(error) ^ meas_flips
        np.bitwise_xor(raw, prev_raw, out=events_row)
        events_row ^= compensation
        prev_raw[:] = raw
        compensation.fill(0)

        if not engine.push_layer(events_row):
            return OnlineOutcome(
                failed=True,
                overflow=True,
                layer_cycles=list(engine.layer_cycles),
                matches=list(engine.matches),
                n_rounds=k,
            )

        if math.isinf(budget):
            arrival, deadline = 0.0, math.inf
        else:
            arrival, deadline = k * budget, (k + 1) * budget
        wall = max(wall, arrival)
        if final_round:
            engine.begin_drain()
            deadline = math.inf
        if unconstrained:
            engine.run_to_idle()
        else:
            for chunk in gen:
                if chunk == IDLE:
                    break
                wall += chunk
                if wall >= deadline:
                    break
        # Apply the window's corrections physically before the next round.
        new_matches = engine.matches[consumed_matches:]
        consumed_matches = len(engine.matches)
        if new_matches:
            window_correction = correction_from_matches(lattice, new_matches)
            error ^= window_correction
            compensation[:] = lattice.syndrome_of(window_correction)

    failed = logical_failure(
        lattice, error, np.zeros(lattice.n_data, dtype=np.uint8)
    )
    return OnlineOutcome(
        failed=failed,
        overflow=False,
        layer_cycles=list(engine.layer_cycles),
        matches=list(engine.matches),
        n_rounds=n_rounds,
    )


@lru_cache(maxsize=4096)
def _shot_entropy(seed: int) -> np.random.SeedSequence:
    """Memoised entropy mixing for integer-seeded shots (~10 us per
    ``SeedSequence``, a pure function of the seed — the decode service
    admits one seeded shot per session).  The cached sequence is only
    ever *read* into a fresh bit generator; it must never be spawned
    from (spawning mutates the parent's child counter), which is why
    this stays private to the streaming-shot constructor rather than
    living in :func:`repro.util.rng.make_rng`.
    """
    return np.random.SeedSequence(seed)


def _shot_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """The exact ``make_rng`` stream, with integer seeds memoised."""
    if isinstance(seed, (int, np.integer)):
        return np.random.Generator(np.random.PCG64(_shot_entropy(int(seed))))
    return make_rng(seed)


@lru_cache(maxsize=512)
def _rates_table(
    noise: NoiseModel, n_rounds: int
) -> list[tuple[float, float]]:
    """Python-float (data, measurement) rates per round, memoised.

    One tuple per round so the per-round batch loop never touches numpy
    scalars; keyed by the (frozen, hashed-by-value) noise model, so
    every admission of the same operating point shares one table.
    """
    return [
        (float(p_t), float(q_t))
        for p_t, q_t in zip(
            noise.data_schedule(n_rounds), noise.meas_schedule(n_rounds)
        )
    ]


class StreamingBlock:
    """Shot-major state slab shared by a batch of streaming shots.

    Holds every per-shot quantity :func:`advance_streaming_round` needs
    on its running path as contiguous row-indexed arrays, so a whole
    round runs as fancy-index gathers/scatters instead of per-shot
    Python:

    - the physical rows — ``errors`` / ``prev`` / ``comp`` (uint8);
    - the **session-state** rows — round cursor ``k``, round budget
      ``rounds``, decoder-cycle ``wall`` clock, per-interval cycle
      ``budget`` (``inf`` = unconstrained clock, mirrored by the
      ``finite`` mask so the vector wall arithmetic never multiplies
      into ``inf``), the engine-idle flag ``at_idle`` and the
      consumed-match cursor ``consumed``;
    - the **pre-drawn noise** rows — ``u[row, t]`` holds round ``t``'s
      uniform draws and ``pq[row, t]`` its (data, measurement) flip
      rates, for rows flagged ``has_u`` (streams above the per-shot
      size bound keep drawing per round instead).

    Rows are allocated to shots on admission and recycled on retirement
    (the decode service's scheduler keeps one block per micro-batch
    shape group); shots hold *views* into the physical rows, so
    :meth:`grow` reallocations require :meth:`OnlineShot.rebind` on
    every live shot — the scheduler owns that bookkeeping.  The
    session-state rows are only ever indexed, never viewed, so growth
    cannot strand them.
    """

    _SLABS = (
        "errors", "prev", "comp",
        "k", "rounds", "wall", "budget", "finite", "at_idle",
        "consumed", "has_u", "u", "pq",
    )

    def __init__(self, lattice: PlanarLattice, capacity: int = 64):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.lattice = lattice
        self.capacity = capacity
        self.errors = np.zeros((capacity, lattice.n_data), dtype=np.uint8)
        self.prev = np.zeros((capacity, lattice.n_ancillas), dtype=np.uint8)
        self.comp = np.zeros((capacity, lattice.n_ancillas), dtype=np.uint8)
        self.k = np.zeros(capacity, dtype=np.int64)
        self.rounds = np.zeros(capacity, dtype=np.int64)
        self.wall = np.zeros(capacity, dtype=np.float64)
        self.budget = np.full(capacity, math.inf, dtype=np.float64)
        self.finite = np.zeros(capacity, dtype=bool)
        self.at_idle = np.ones(capacity, dtype=bool)
        self.consumed = np.zeros(capacity, dtype=np.int64)
        self.has_u = np.zeros(capacity, dtype=bool)
        # Per-round noise slabs, grown along the round axis on demand.
        width = lattice.n_data + lattice.n_ancillas
        self.n_rounds_cap = 0
        self.u = np.zeros((capacity, 0, width), dtype=np.float64)
        self.pq = np.zeros((capacity, 0, 2), dtype=np.float64)
        self._free = list(range(capacity - 1, -1, -1))

    @property
    def n_free(self) -> int:
        """Rows currently unallocated."""
        return len(self._free)

    def alloc(self) -> int:
        """Claim a reset row; grows the block when none are free."""
        if not self._free:
            self.grow()
        row = self._free.pop()
        self.errors[row] = 0
        self.prev[row] = 0
        self.comp[row] = 0
        self.k[row] = 0
        self.rounds[row] = 0
        self.wall[row] = 0.0
        self.budget[row] = math.inf
        self.finite[row] = False
        self.at_idle[row] = True
        self.consumed[row] = 0
        self.has_u[row] = False
        return row

    def release(self, row: int) -> None:
        """Return a retired shot's row to the free list."""
        self._free.append(row)

    def ensure_rounds(self, n_rounds: int) -> None:
        """Grow the per-round noise slabs to cover ``n_rounds`` rounds.

        Unlike :meth:`grow` this reallocation strands no views — the
        noise slabs are only ever indexed.
        """
        if n_rounds <= self.n_rounds_cap:
            return
        new = max(n_rounds, 2 * self.n_rounds_cap)
        for name in ("u", "pq"):
            arr = getattr(self, name)
            grown = np.zeros(
                (self.capacity, new) + arr.shape[2:], dtype=arr.dtype
            )
            grown[:, : self.n_rounds_cap] = arr
            setattr(self, name, grown)
        self.n_rounds_cap = new

    def grow(self) -> None:
        """Double capacity, preserving live rows.

        Existing views go stale: every live shot must ``rebind``.
        """
        old = self.capacity
        self.capacity = old * 2
        for name in self._SLABS:
            arr = getattr(self, name)
            grown = np.zeros((self.capacity,) + arr.shape[1:], dtype=arr.dtype)
            grown[:old] = arr
            setattr(self, name, grown)
        self._free.extend(range(self.capacity - 1, old - 1, -1))


class StreamingShotState:
    """Shared per-shot state of the streaming-shot protocol.

    The plumbing every shot kind needs — the physical error row, the
    previous raw syndrome, the pending correction compensation, the
    noise substream and its python-float rate table, and the round
    counter.  All of it is **slab-resident**: state lives in the rows
    of a :class:`StreamingBlock` (a shared one when batched — the
    decode service allocates one row per admission — or a private
    single-row block otherwise), and the shot object is a *shim* over
    its row: attribute access reads/writes the slab, so per-shot and
    vectorized advances see the same state.  Concrete shots
    (:class:`OnlineShot` here, ``WindowShot`` in
    :mod:`repro.service.session`) add their decode state and implement
    ``step()``, ``finish_pair()`` and ``finalize()``.
    """

    __slots__ = (
        "lattice", "noise", "n_rounds", "rng",
        "error", "prev_raw", "compensation", "outcome",
        "block", "row", "_rates", "owner",
    )

    def __init__(
        self,
        lattice: PlanarLattice,
        noise: NoiseModel,
        n_rounds: int,
        rng: np.random.Generator | int | None,
        block: StreamingBlock | None,
    ):
        if n_rounds < 1:
            raise ValueError(f"n_rounds must be >= 1, got {n_rounds}")
        self.lattice = lattice
        self.noise = noise
        self.n_rounds = n_rounds
        self.rng = _shot_rng(rng)
        # State rows: a shared StreamingBlock when batched (row released
        # by the owner at retirement), a private single-row block
        # otherwise — identical layout and semantics either way.
        if block is None:
            block = StreamingBlock(lattice, capacity=1)
        self.block = block
        self.row = block.alloc()
        self.rebind()
        block.rounds[self.row] = n_rounds
        self.outcome = None
        self.owner = None  # opaque back-reference for schedulers
        # The whole stream's uniform draws, taken up front in one call
        # straight into the block's noise slab: numpy fills row-major,
        # so u[row, k] holds exactly the doubles round k's
        # `sample_round` would draw — the same stream, one generator
        # call instead of one per round.  (A shot that stops early —
        # Reg overflow — leaves its generator past where the per-round
        # reference would; nothing reads it afterwards.)  Bounded by
        # *size*, not rounds, so long/large-lattice streams cannot pin
        # multi-MB slab rows per session (a busy scheduler holds
        # hundreds of shots); oversize streams draw per round and skip
        # the vectorized noise gather (``has_u`` stays False).
        # Drawn into a fresh (n_rounds, width) array — the exact
        # generator call of the per-round reference, independent of the
        # slab's round-axis over-allocation — then copied into the slab.
        width = lattice.n_data + lattice.n_ancillas
        if n_rounds * width <= 16384:
            block.ensure_rounds(n_rounds)
            block.u[self.row, :n_rounds] = self.rng.random((n_rounds, width))
            block.has_u[self.row] = True
        try:
            self._rates = _rates_table(noise, n_rounds)
        except TypeError:  # an unhashable custom model: build directly
            self._rates = _rates_table.__wrapped__(noise, n_rounds)
        if block.has_u[self.row]:
            block.pq[self.row, :n_rounds] = self._rates

    @property
    def k(self) -> int:
        """Current round index (slab-resident)."""
        return int(self.block.k[self.row])

    @k.setter
    def k(self, value: int) -> None:
        self.block.k[self.row] = value

    def rebind(self) -> None:
        """Refresh the block-row views (after ``StreamingBlock.grow``)."""
        self.error = self.block.errors[self.row]
        self.prev_raw = self.block.prev[self.row]
        self.compensation = self.block.comp[self.row]

    def rates(self) -> tuple[float, float]:
        """This round's (data, measurement) flip rates — exactly what
        ``noise.sample_round(..., t=k, n_rounds=n_rounds)`` would use."""
        return self._rates[self.k]


class OnlineShot(StreamingShotState):
    """Streaming state of one online decode, advanced round by round.

    The session-granular unit under both :func:`run_online_chunk` and
    the decode service's micro-batching scheduler
    (:mod:`repro.service.scheduler`): everything one trial owns — the
    engine, its resumable Controller generator, the physical error
    state, the previous raw syndrome, the pending correction
    compensation, the wall clock and the noise substream — bundled so
    shots can be **added to or removed from a running batch between
    rounds**.  :func:`advance_streaming_round` advances any set of
    same-lattice shots one round in lock-step; a shot fed one round at
    a time evolves bit-identically to :func:`run_online_trial` on the
    same seed, whatever other shots share its batches.
    """

    __slots__ = (
        "config", "engine",
        "_budget", "_unconstrained", "_gen",
        "_batch", "_lane",
    )

    kind = "online"

    def __init__(
        self,
        lattice: PlanarLattice,
        noise: NoiseModel,
        n_rounds: int,
        config: OnlineConfig,
        rng: np.random.Generator | int | None,
        engine: QecoolEngine | None = None,
        block: StreamingBlock | None = None,
        batch: QecoolEngineBatch | None = None,
    ):
        super().__init__(lattice, noise, n_rounds, rng, block)
        self.config = config
        self._budget = config.cycles_per_interval
        self._unconstrained = math.isinf(self._budget)
        if not self._unconstrained:
            # alloc() reset the row to the unconstrained defaults
            # (budget=inf, finite=False); stamp the finite clock so the
            # vectorized wall arithmetic can mask on ``finite`` and
            # never multiply a round index into ``inf``.
            self.block.budget[self.row] = self._budget
            self.block.finite[self.row] = True
        # ``batch`` binds the shot to a lane of a shot-major batch
        # engine (the fast path of :func:`run_online_chunk` and the
        # decode service's lane allocator); ``engine`` keeps the scalar
        # per-shot engine — the oracle and sub-cutoff fallback.
        self._batch = batch
        if batch is not None:
            if engine is not None:
                raise ValueError("pass a scalar engine or a batch, not both")
            if (batch.thv, batch.reg_size) != (config.thv, config.reg_size):
                raise ValueError("batch engine shape does not match config")
            self._lane = batch.alloc_lane()
            batch.set_wall_exact(
                self._lane,
                self._unconstrained or float(self._budget).is_integer(),
            )
            self.engine = None
            self._gen = None
        else:
            self._lane = -1
            # ``engine`` lets a caller recycle a reset engine of the
            # same (lattice, thv, reg_size) shape instead of allocating.
            self.engine = (
                QecoolEngine(
                    lattice, thv=config.thv, reg_size=config.reg_size,
                    kernel_backend=config.kernel_backend,
                )
                if engine is None
                else engine
            )
            # A finite clock needs run()'s resumable cycle stream
            # (decodes freeze mid-sweep at the interval boundary);
            # without a deadline the engine advances synchronously via
            # run_to_idle().
            self._gen = (
                None if self._unconstrained else self.engine.run(drain=False)
            )

    # Slab-resident session state: the wall clock, engine-idle flag and
    # consumed-match cursor live in the shot's StreamingBlock row so
    # whole-batch advances read/write them as vector gathers/scatters;
    # these shims keep the per-shot (scalar-engine) paths working on
    # the same state.

    @property
    def wall(self) -> float:
        """Decoder-cycle wall clock (slab-resident)."""
        return float(self.block.wall[self.row])

    @wall.setter
    def wall(self, value: float) -> None:
        self.block.wall[self.row] = value

    @property
    def _at_idle(self) -> bool:
        return bool(self.block.at_idle[self.row])

    @_at_idle.setter
    def _at_idle(self, value: bool) -> None:
        self.block.at_idle[self.row] = value

    @property
    def _consumed(self) -> int:
        return int(self.block.consumed[self.row])

    @_consumed.setter
    def _consumed(self, value: int) -> None:
        self.block.consumed[self.row] = value

    def release(self) -> None:
        """Return the shot's batch lane (after its outcome is built)."""
        if self._batch is not None and self._lane >= 0:
            self._batch.free_lane(self._lane)
            self._lane = -1

    def _engine_matches(self) -> list[Match]:
        return (
            self.engine.matches
            if self._batch is None
            else self._batch.matches_of(self._lane)
        )

    def _engine_layer_cycles(self) -> list[int]:
        return (
            self.engine.layer_cycles
            if self._batch is None
            else self._batch.layer_cycles_of(self._lane)
        )

    def _overflow_outcome(self) -> OnlineOutcome:
        self.outcome = OnlineOutcome(
            failed=True,
            overflow=True,
            layer_cycles=list(self._engine_layer_cycles()),
            matches=list(self._engine_matches()),
            n_rounds=self.k,
        )
        return self.outcome

    def step(
        self, events_row: np.ndarray, empty: bool
    ) -> tuple[str, np.ndarray | None]:
        """Consume round ``k``'s detection events; decode under the clock.

        ``events_row`` is the round's detection-event layer, already
        XOR-folded against ``prev_raw``/``compensation`` by the caller
        (:func:`advance_streaming_round`, which also batch-updates
        those rows; ``empty`` flags an all-zero layer).  Returns
        ``(status, correction)`` with status ``"running"``/``"done"``/
        ``"overflow"``; a non-None correction has been applied to
        ``error`` and still needs its compensation syndrome (batched by
        the caller into ``compensation``).
        """
        if self._batch is not None:
            return _advance_batch_group(
                self._batch, [self],
                np.asarray(events_row, dtype=np.uint8)[None, :],
                [empty],
            )[0]
        block, row = self.block, self.row
        k = int(block.k[row])
        final = k == self.n_rounds
        engine = self.engine
        # Empty layer into an IDLE-parked engine: the simulated path is
        # a fixed state delta in two common streaming cases — an empty
        # engine (immediate pop, no sinks: idle_layer_fast) and events
        # still waiting on the thv look-ahead with no newly-exposed
        # sink (try_push_empty_idle).  Both are bit-identical to the
        # generator path and never touch it.
        if empty and not final and block.at_idle[row]:
            if not engine._live and not engine.m:
                cost = engine.idle_layer_fast()
                if not self._unconstrained:
                    block.wall[row] = (
                        max(float(block.wall[row]), k * self._budget) + cost
                    )
                block.k[row] = k + 1
                return "running", None
            absorbed = engine.try_push_empty_idle()
            if absorbed:
                if not self._unconstrained:
                    block.wall[row] = max(
                        float(block.wall[row]), k * self._budget
                    )
                block.k[row] = k + 1
                return "running", None
            if absorbed is False:
                self._overflow_outcome()
                return "overflow", None
        if not engine.push_layer(events_row):
            self._overflow_outcome()
            return "overflow", None
        if self._unconstrained:
            deadline = math.inf
        else:
            wall = max(float(block.wall[row]), k * self._budget)
            block.wall[row] = wall
            deadline = (k + 1) * self._budget
        if final:
            engine.begin_drain()
            deadline = math.inf
        if self._unconstrained:
            engine.run_to_idle()
        else:
            at_idle = True  # generator exhaustion (drain) parks clean too
            for chunk in self._gen:
                if chunk == IDLE:
                    break
                wall += chunk
                if wall >= deadline:
                    at_idle = False
                    break
            block.wall[row] = wall
            block.at_idle[row] = at_idle
        block.k[row] = k + 1
        consumed = int(block.consumed[row])
        new_matches = engine.matches[consumed:]
        block.consumed[row] = len(engine.matches)
        correction = None
        if new_matches:
            correction = correction_from_matches(self.lattice, new_matches)
            self.error ^= correction
        return ("done" if final else "running"), correction

    def finish_pair(self) -> tuple[np.ndarray, np.ndarray | None]:
        """(final error, correction) for the batched logical-failure
        check; ``None`` means the all-zero correction (online shots
        apply corrections physically as they stream)."""
        return self.error, None

    def finalize(self, failed: bool) -> None:
        """Record the end-of-trial outcome after the failure check."""
        self.outcome = OnlineOutcome(
            failed=bool(failed),
            overflow=False,
            layer_cycles=list(self._engine_layer_cycles()),
            matches=list(self._engine_matches()),
            n_rounds=self.n_rounds,
        )


def _advance_batch_group(
    batch: QecoolEngineBatch,
    shots: list["OnlineShot"],
    events: np.ndarray,
    empties: Sequence[bool],
) -> list[tuple[str, np.ndarray | None]]:
    """One round's :meth:`OnlineShot.step` for every lane of one batch
    engine, with the per-shot engine work batched.

    Mirrors the scalar ``step`` case for case: the two empty-layer fast
    entries dispatch vectorized (``empty_layers_fast`` /
    ``try_push_empty``), pushes land in one slab pass, and the decode —
    under each shot's own wall clock and interval deadline — runs
    through the batch engine's lock-step Controller.  Returns the
    per-shot ``(status, correction)`` pairs in input order.
    """
    results: list = [None] * len(shots)
    fast_idle: list[int] = []
    fast_try: list[int] = []
    pushes: list[int] = []
    # Inlined batch.is_parked / is_empty_idle (this classification runs
    # once per shot per round — the service's per-session hot path).
    parked_arr, cursors = batch._parked, batch._cursors
    m_arr, drain_arr = batch._m, batch._drain
    for j, shot in enumerate(shots):
        lane = shot._lane
        if (
            empties[j]
            and shot.k != shot.n_rounds
            and shot._at_idle
            and parked_arr[lane]
            and lane not in cursors
        ):
            if not m_arr[lane] and not drain_arr[lane]:
                fast_idle.append(j)
            else:
                fast_try.append(j)
        else:
            pushes.append(j)
    if fast_idle:
        lanes = np.fromiter(
            (shots[j]._lane for j in fast_idle), np.int64, len(fast_idle)
        )
        costs = batch.empty_layers_fast(lanes).tolist()
        for j, cost in zip(fast_idle, costs):
            shot = shots[j]
            if not shot._unconstrained:
                shot.wall = max(shot.wall, shot.k * shot._budget) + cost
            shot.k += 1
            results[j] = ("running", None)
    if fast_try:
        lanes = np.fromiter(
            (shots[j]._lane for j in fast_try), np.int64, len(fast_try)
        )
        for j, res in zip(fast_try, batch.try_push_empty(lanes).tolist()):
            shot = shots[j]
            if res == 1:
                if not shot._unconstrained:
                    shot.wall = max(shot.wall, shot.k * shot._budget)
                shot.k += 1
                results[j] = ("running", None)
            elif res == 0:
                shot._overflow_outcome()
                results[j] = ("overflow", None)
            else:
                pushes.append(j)  # a sink would be exposed: simulate
    if not pushes:
        return results
    lanes = np.fromiter((shots[j]._lane for j in pushes), np.int64, len(pushes))
    ok = batch.push_layers(lanes, events[pushes])
    decode: list[int] = []
    for j, okj in zip(pushes, ok.tolist()):
        if okj:
            decode.append(j)
        else:
            shots[j]._overflow_outcome()
            results[j] = ("overflow", None)
    if not decode:
        return results
    lanes = np.fromiter((shots[j]._lane for j in decode), np.int64, len(decode))
    finals = np.fromiter(
        (shots[j].k == shots[j].n_rounds for j in decode), bool, len(decode)
    )
    if finals.any():
        batch.begin_drain(lanes[finals])
    wall = np.zeros(len(decode), dtype=np.float64)
    deadline = np.full(len(decode), math.inf)
    for jj, j in enumerate(decode):
        shot = shots[j]
        if not shot._unconstrained:
            shot.wall = max(shot.wall, shot.k * shot._budget)
            wall[jj] = shot.wall
            if not finals[jj]:
                deadline[jj] = (shot.k + 1) * shot._budget
    statuses = batch.decode(lanes, wall, deadline)
    for jj, j in enumerate(decode):
        shot = shots[j]
        if not shot._unconstrained:
            shot.wall = float(wall[jj])
        shot._at_idle = statuses[jj] != LANE_SUSPENDED
        shot.k += 1
        lane_matches = batch.matches_of(shot._lane)
        new_matches = lane_matches[shot._consumed :]
        shot._consumed = len(lane_matches)
        correction = None
        if new_matches:
            correction = correction_from_matches(shot.lattice, new_matches)
            shot.error ^= correction
        results[j] = (("done" if finals[jj] else "running"), correction)
    return results


class StreamingRoster:
    """Precomputed dispatch structure for a fixed set of slab shots.

    Building the per-round dispatch — the row gather index, the
    batch-engine lane groupings, the per-shot-fallback list — takes a
    Python pass over the shots.  A roster caches that pass, so a
    scheduler advancing the same membership round after round pays it
    once per membership *change* rather than once per round
    (:func:`advance_streaming_round` builds a throwaway roster when
    none is passed).  Any membership change — admission, retirement,
    overflow — invalidates the roster; build a fresh one.
    """

    __slots__ = ("shots", "rows", "parts", "object_idx")

    def __init__(self, block: StreamingBlock, shots: Sequence) -> None:
        self.shots = list(shots)
        for shot in self.shots:
            if shot.block is not block:
                # A stray shot's row indexes a *different* block;
                # advancing it against this one's slabs would silently
                # read/corrupt a co-tenant's row.
                raise ValueError(
                    "every shot must hold a row in the passed block"
                )
        self.rows = np.fromiter(
            (s.row for s in self.shots), np.intp, len(self.shots)
        )
        # Shots bound to a shot-major batch engine advance together,
        # one vectorized group step per engine; everything else
        # (scalar-engine online shots, window shots) takes its
        # per-shot ``step``.
        groups: dict[int, tuple[QecoolEngineBatch, list[int]]] = {}
        object_idx: list[int] = []
        for i, shot in enumerate(self.shots):
            batch = getattr(shot, "_batch", None)
            if batch is not None:
                groups.setdefault(id(batch), (batch, []))[1].append(i)
            else:
                object_idx.append(i)
        self.parts = [
            (
                batch,
                np.asarray(idxs, dtype=np.intp),
                np.fromiter(
                    (self.shots[i]._lane for i in idxs), np.int64, len(idxs)
                ),
            )
            for batch, idxs in groups.values()
        ]
        self.object_idx = object_idx


def _advance_batch_rows(
    batch: QecoolEngineBatch,
    block: StreamingBlock,
    shots: list,
    rows: np.ndarray,
    kk: np.ndarray,
    idx: np.ndarray,
    lanes: np.ndarray,
    events: np.ndarray,
    nonempty: np.ndarray,
    done: list,
    finished: list,
    corrected_rows: list[int],
    corrections: list[np.ndarray],
) -> None:
    """One round's engine advance for every lane of one batch engine,
    with the session state vectorized over the shots' slab rows.

    The slab-native counterpart of :func:`_advance_batch_group`: the
    same case-for-case mirror of the scalar :meth:`OnlineShot.step` —
    the two empty-layer fast entries, the slab push, the lock-step
    decode under each shot's own wall clock and interval deadline —
    but the wall/round/idle/consumed bookkeeping runs as masked vector
    arithmetic on the block's session slabs (``finite`` masks every
    wall product so an unconstrained row never multiplies into
    ``inf``).  The only per-shot Python left on the running path is
    correction materialisation for lanes whose match list actually
    grew, and outcome construction for shots that drop out.
    """
    r = rows[idx]
    k = kk[idx]
    final = k == block.rounds[r]
    # Empty-layer fast-entry eligibility, vectorized over the group
    # (the conditions of the scalar step's ``empty and not final and
    # at_idle and parked and lane not in cursors`` guard).
    eligible = (
        ~nonempty[idx] & ~final & block.at_idle[r] & batch._parked[lanes]
    )
    if batch._cursors and eligible.any():
        eligible &= np.fromiter(
            (lane not in batch._cursors for lane in lanes.tolist()),
            bool, lanes.size,
        )
    hold = (batch._m[lanes] != 0) | batch._drain[lanes]
    push = ~eligible
    fi = np.flatnonzero(eligible & ~hold)
    if fi.size:
        costs = batch.empty_layers_fast(lanes[fi])
        rf = r[fi]
        fin = block.finite[rf]
        if fin.any():
            rff = rf[fin]
            block.wall[rff] = (
                np.maximum(block.wall[rff], k[fi][fin] * block.budget[rff])
                + costs[fin]
            )
        block.k[rf] += 1
    ft = np.flatnonzero(eligible & hold)
    if ft.size:
        res = batch.try_push_empty(lanes[ft])
        absorbed = ft[res == 1]
        if absorbed.size:
            ra = r[absorbed]
            fin = block.finite[ra]
            if fin.any():
                raf = ra[fin]
                block.wall[raf] = np.maximum(
                    block.wall[raf], k[absorbed][fin] * block.budget[raf]
                )
            block.k[ra] += 1
        for j in ft[res == 0].tolist():
            shot = shots[idx[j]]
            shot._overflow_outcome()
            finished.append(shot)
        push[ft[res == -1]] = True  # a sink would be exposed: simulate
    pi = np.flatnonzero(push)
    if not pi.size:
        return
    pl = lanes[pi]
    ok = batch.push_layers(pl, events[idx[pi]])
    if not ok.all():
        for j in pi[~ok].tolist():
            shot = shots[idx[j]]
            shot._overflow_outcome()
            finished.append(shot)
        pi = pi[ok]
        if not pi.size:
            return
        pl = lanes[pi]
    rd = r[pi]
    kd = k[pi]
    dfinal = final[pi]
    if dfinal.any():
        batch.begin_drain(pl[dfinal])
    wall_in = np.zeros(pi.size, dtype=np.float64)
    deadline = np.full(pi.size, math.inf)
    fin = block.finite[rd]
    if fin.any():
        rdf = rd[fin]
        wall_in[fin] = np.maximum(
            block.wall[rdf], kd[fin] * block.budget[rdf]
        )
        ddl = fin & ~dfinal
        if ddl.any():
            deadline[ddl] = (kd[ddl] + 1) * block.budget[rd[ddl]]
    statuses = batch.decode(pl, wall_in, deadline)
    if fin.any():
        block.wall[rd[fin]] = wall_in[fin]
    block.at_idle[rd] = statuses != LANE_SUSPENDED
    block.k[rd] += 1
    counts = batch.match_counts(pl)
    consumed = block.consumed[rd]
    changed = np.flatnonzero(counts != consumed)
    for j in changed.tolist():
        shot = shots[idx[pi[j]]]
        new_matches = batch.matches_of(int(pl[j]))[int(consumed[j]):]
        correction = correction_from_matches(shot.lattice, new_matches)
        row = int(rd[j])
        np.bitwise_xor(block.errors[row], correction, out=block.errors[row])
        if not dfinal[j]:
            corrected_rows.append(row)
            corrections.append(correction)
    if changed.size:
        block.consumed[rd[changed]] = counts[changed]
    for j in np.flatnonzero(dfinal).tolist():
        done.append(shots[idx[pi[j]]])


def _finalize_done(lattice: PlanarLattice, done: list) -> None:
    """Batched end-of-stream logical-failure check + outcome build."""
    final_errors = np.empty((len(done), lattice.n_data), dtype=np.uint8)
    final_corrections = np.zeros((len(done), lattice.n_data), dtype=np.uint8)
    for j, shot in enumerate(done):
        error, correction = shot.finish_pair()
        final_errors[j] = error
        if correction is not None:
            final_corrections[j] = correction
    fails = logical_failures_batch(lattice, final_errors, final_corrections)
    for shot, fail in zip(done, fails):
        shot.finalize(bool(fail))


def advance_streaming_round(
    lattice: PlanarLattice,
    shots: Sequence["OnlineShot"],
    block: StreamingBlock | None = None,
    roster: StreamingRoster | None = None,
    tracer=None,
) -> tuple[list, list]:
    """Advance every shot one measurement round, batched across shots.

    The micro-batching kernel: per-round noise sampling (each shot's
    own substream and schedule — shots may sit at *different* round
    indices, carry different noise models, clocks and round budgets),
    syndrome extraction, detection-event folding,
    correction-compensation syndromes *and the per-session state
    bookkeeping* (round cursors, wall clocks, idle flags,
    consumed-match cursors) each run as one vectorized pass over the
    batch's slab rows.  Membership is free to change between calls —
    that is what the decode service's scheduler does — and every
    shot's evolution is bit-identical to running it alone
    (``tests/test_online.py``, ``tests/test_service.py``).

    ``shots`` may mix any objects implementing the streaming-shot
    protocol (see :class:`OnlineShot`) on the same lattice.  When
    every shot's state rows live in ``block`` (a shared
    :class:`StreamingBlock`), pass it — and, for repeated same-
    membership rounds, a cached :class:`StreamingRoster` — so the
    per-round state traffic runs as whole-batch gathers/scatters
    instead of per-shot row copies.  Returns ``(running, finished)``;
    ``running`` preserves input order and finished shots have
    ``outcome`` set.

    ``tracer`` (a :class:`repro.obs.trace.Tracer`, or ``None`` — the
    default) times the round's three sections on the slab path — noise
    gather, batch-lane advance, scalar advance — as spans.  Tracing
    only reads a clock; it never touches decode state, so traced and
    untraced rounds are bit-identical.
    """
    if roster is not None:
        shots = roster.shots
    n = len(shots)
    if not n:
        return [], []
    if block is None:
        return _advance_round_views(lattice, shots)
    if roster is None:
        roster = StreamingRoster(block, shots)
    if tracer is not None:
        t = tracer.clock()
    rows = roster.rows
    kk = block.k[rows]
    n_data = lattice.n_data
    errors = block.errors[rows]
    nidx = np.flatnonzero(kk < block.rounds[rows])
    if nidx.size:
        # Per-round noise, gathered straight from the block's pre-drawn
        # uniform/rate slabs (rows above the pre-draw size bound fall
        # back to their own substream, drawn here in round order).
        sel = rows[nidx]
        ksel = kk[nidx]
        hasu = block.has_u[sel]
        if hasu.all():
            uniforms = block.u[sel, ksel]
            pq = block.pq[sel, ksel]
        else:
            uniforms = np.empty((nidx.size, n_data + lattice.n_ancillas))
            pq = np.empty((nidx.size, 2))
            hj = np.flatnonzero(hasu)
            if hj.size:
                uniforms[hj] = block.u[sel[hj], ksel[hj]]
                pq[hj] = block.pq[sel[hj], ksel[hj]]
            for j in np.flatnonzero(~hasu).tolist():
                shot = shots[int(nidx[j])]
                shot.rng.random(out=uniforms[j])
                pq[j] = shot._rates[int(ksel[j])]
        data_flips = (uniforms[:, :n_data] < pq[:, 0:1]).view(np.uint8)
        meas_flips = (uniforms[:, n_data:] < pq[:, 1:2]).view(np.uint8)
        errors[nidx] ^= data_flips
        block.errors[sel] = errors[nidx]
    raws = lattice.syndrome_of_batch(errors)
    if nidx.size:
        raws[nidx] ^= meas_flips
    events = raws ^ block.prev[rows] ^ block.comp[rows]
    block.prev[rows] = raws
    block.comp[rows] = 0
    nonempty = events.any(axis=1)
    if tracer is not None:
        now = tracer.clock()
        tracer.add("round.noise_gather", t, now - t)
        t = now

    done: list = []
    finished: list = []
    corrected_rows: list[int] = []
    corrections: list[np.ndarray] = []
    for batch, idx, lanes in roster.parts:
        _advance_batch_rows(
            batch, block, shots, rows, kk, idx, lanes, events, nonempty,
            done, finished, corrected_rows, corrections,
        )
    if tracer is not None:
        now = tracer.clock()
        if roster.parts:
            tracer.add("round.batch_advance", t, now - t)
        t = now
    for i in roster.object_idx:
        shot = shots[i]
        status, correction = shot.step(events[i], not nonempty[i])
        if status == "overflow":
            finished.append(shot)
            continue
        if correction is not None and status == "running":
            corrected_rows.append(shot.row)
            corrections.append(correction)
        if status == "done":
            done.append(shot)
    if tracer is not None and len(roster.object_idx):
        tracer.add("round.scalar_advance", t, tracer.clock() - t)
    if corrections:
        comp_rows = lattice.syndrome_of_batch(np.stack(corrections))
        block.comp[np.asarray(corrected_rows, dtype=np.intp)] = comp_rows
    if done:
        _finalize_done(lattice, done)
        finished.extend(done)
    if not finished:
        return list(shots), []
    drop = set(map(id, finished))
    return [s for s in shots if id(s) not in drop], finished


def _advance_round_views(
    lattice: PlanarLattice, shots: Sequence["OnlineShot"]
) -> tuple[list, list]:
    """Blockless advance: shots whose state rows live in *different*
    blocks (private single-row blocks, typically) advance through
    their per-shot views — the pre-slab object path, kept as the
    bit-identity oracle and for direct step-by-step drivers."""
    n = len(shots)
    noisy = [i for i, s in enumerate(shots) if s.k < s.n_rounds]
    if noisy:
        nn = len(noisy)
        n_data = lattice.n_data
        uniforms = np.empty((nn, n_data + lattice.n_ancillas))
        rates = []
        for j, i in enumerate(noisy):
            shot = shots[i]
            if shot.block.has_u[shot.row]:
                uniforms[j] = shot.block.u[shot.row, shot.k]
            else:
                shot.rng.random(out=uniforms[j])
            rates.append(shot._rates[shot.k])
        pq = np.asarray(rates)
        data_flips = (uniforms[:, :n_data] < pq[:, 0:1]).view(np.uint8)
        meas_flips = (uniforms[:, n_data:] < pq[:, 1:2]).view(np.uint8)
        for j, i in enumerate(noisy):
            shot = shots[i]
            np.bitwise_xor(shot.error, data_flips[j], out=shot.error)
    errors = np.empty((n, lattice.n_data), dtype=np.uint8)
    prev = np.empty((n, lattice.n_ancillas), dtype=np.uint8)
    comp = np.empty((n, lattice.n_ancillas), dtype=np.uint8)
    for i, shot in enumerate(shots):
        errors[i] = shot.error
        prev[i] = shot.prev_raw
        comp[i] = shot.compensation
    raws = lattice.syndrome_of_batch(errors)
    if noisy:
        raws[noisy] ^= meas_flips
    events = raws ^ prev ^ comp
    for i, shot in enumerate(shots):
        shot.prev_raw[:] = raws[i]
        shot.compensation.fill(0)
    nonempty = events.any(axis=1)

    # Shots bound to a shot-major batch engine advance together, one
    # batched group step per engine; everything else (scalar-engine
    # online shots, window shots) takes its per-shot ``step``.
    batch_results: dict[int, tuple] = {}
    groups: dict[int, tuple[QecoolEngineBatch, list[int]]] = {}
    for i, shot in enumerate(shots):
        batch = getattr(shot, "_batch", None)
        if batch is not None:
            groups.setdefault(id(batch), (batch, []))[1].append(i)
    for batch, idxs in groups.values():
        group_results = _advance_batch_group(
            batch,
            [shots[i] for i in idxs],
            events[idxs],
            (~nonempty[idxs]).tolist(),
        )
        batch_results.update(zip(idxs, group_results))

    running: list = []
    done: list = []
    finished: list = []
    corrected: list = []
    corrections: list[np.ndarray] = []
    for i, shot in enumerate(shots):
        if i in batch_results:
            status, correction = batch_results[i]
        else:
            status, correction = shot.step(events[i], not nonempty[i])
        if status == "overflow":
            finished.append(shot)
            continue
        if status == "running":
            if correction is not None:
                corrected.append(shot)
                corrections.append(correction)
            running.append(shot)
        else:
            done.append(shot)
    if corrections:
        comp_rows = lattice.syndrome_of_batch(np.stack(corrections))
        for shot, row in zip(corrected, comp_rows):
            shot.compensation[:] = row
    if done:
        _finalize_done(lattice, done)
        finished.extend(done)
    return running, finished


def run_online_chunk(
    lattice: PlanarLattice,
    p: float | NoiseModel,
    n_rounds: int,
    config: OnlineConfig,
    rngs: Sequence[np.random.Generator],
    q: float | None = None,
) -> list[OnlineOutcome]:
    """Run a chunk of online trials batched across shots.

    **Bit-identical** to calling :func:`run_online_trial` once per
    generator in ``rngs`` (covered by ``tests/test_online.py``): each
    shot keeps its own wall clock and noise substream
    (:class:`OnlineShot`), but the per-round heavy lifting — noise
    sampling, syndrome extraction, event folding, correction
    compensation *and the engine advance itself* — runs batched over
    the still-active shots: one :class:`~repro.core.engine_batch.
    QecoolEngineBatch` lane per shot, decoded in lock-step (chunks
    below :data:`BATCH_ENGINE_CUTOFF` keep the scalar per-shot
    engines).  Shots drop out of the batch when their Reg overflows,
    exactly where their per-shot trial would return.
    """
    if n_rounds < 1:
        raise ValueError(f"n_rounds must be >= 1, got {n_rounds}")
    noise = _resolve_trial_noise(p, q)
    rngs = list(rngs)
    block = StreamingBlock(lattice, capacity=max(1, len(rngs)))
    batch = (
        QecoolEngineBatch(
            lattice, thv=config.thv, reg_size=config.reg_size,
            capacity=len(rngs), kernel_backend=config.kernel_backend,
        )
        if len(rngs) >= BATCH_ENGINE_CUTOFF
        else None
    )
    shots = [
        OnlineShot(lattice, noise, n_rounds, config, rng, block=block, batch=batch)
        for rng in rngs
    ]
    active: list = list(shots)
    for _ in range(n_rounds + 1):
        active, _ = advance_streaming_round(lattice, active, block=block)
    return [shot.outcome for shot in shots]  # type: ignore[misc]
