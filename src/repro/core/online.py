"""Online-QEC simulation: streaming decode under a finite decoder clock.

This drives the experiment of Section V-B / Fig. 7.  Every measurement
interval (1 us in the paper) a new syndrome layer arrives; the decoder,
clocked at ``frequency_hz``, gets ``frequency_hz * interval`` execution
cycles between arrivals.  Detection events are pushed into the Units'
7-bit ``Reg`` queues; if a layer arrives while the queue is full the
trial is an **overflow failure** ("If Reg overflows because of the slow
QEC performance, the trial is considered as a failure").

Corrections are applied *physically* to the data qubits between rounds —
that is the point of online-QEC — and the decoder compensates its own
corrections out of the next round's detection events (the ``sendSyndrome``
feedback path of Algorithm 1): the event layer pushed for round ``t`` is

    raw_syndrome(t) XOR raw_syndrome(t-1) XOR H . corrections(t-1 -> t)

After the last noisy round a final perfectly-measured round is appended
and the engine drains (``thv`` wait lifted); the trial is a logical
failure if the residual error crosses the west-east cut.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import IDLE, QecoolEngine
from repro.decoders.base import Match, correction_from_matches
from repro.surface_code.lattice import PlanarLattice
from repro.surface_code.logical import logical_failure, logical_failures_batch
from repro.surface_code.noise import NoiseModel, PhenomenologicalNoise
from repro.util.rng import make_rng

__all__ = [
    "OnlineConfig",
    "OnlineOutcome",
    "OnlineShot",
    "StreamingBlock",
    "StreamingShotState",
    "advance_streaming_round",
    "run_online_chunk",
    "run_online_trial",
]


@dataclass(frozen=True)
class OnlineConfig:
    """Operating point of the online decoder.

    ``frequency_hz=None`` models an unconstrained clock (used for
    Table III, which measures cycles per layer rather than real-time
    feasibility).
    """

    frequency_hz: float | None = 2.0e9
    measurement_interval_s: float = 1.0e-6
    thv: int = 3
    reg_size: int = 7

    @property
    def cycles_per_interval(self) -> float:
        """Decoder cycles available between measurement arrivals."""
        if self.frequency_hz is None:
            return math.inf
        return self.frequency_hz * self.measurement_interval_s


@dataclass
class OnlineOutcome:
    """Result of one online trial."""

    failed: bool
    overflow: bool
    layer_cycles: list[int] = field(default_factory=list)
    matches: list[Match] = field(default_factory=list)
    n_rounds: int = 0

    @property
    def logical_failed(self) -> bool:
        """Failure excluding overflow (pure matching-quality failures)."""
        return self.failed and not self.overflow


def _resolve_trial_noise(p: float | NoiseModel, q: float | None) -> NoiseModel:
    if isinstance(p, NoiseModel):
        if q is not None:
            raise ValueError("q is part of the noise model; pass one or the other")
        return p
    return PhenomenologicalNoise(p, q)


def run_online_trial(
    lattice: PlanarLattice,
    p: float | NoiseModel,
    n_rounds: int,
    config: OnlineConfig = OnlineConfig(),
    rng: np.random.Generator | int | None = None,
    q: float | None = None,
    engine_factory: Callable[..., QecoolEngine] | None = None,
) -> OnlineOutcome:
    """Run one online-QEC trial of ``n_rounds`` noisy measurement rounds.

    ``p`` is either the phenomenological data-flip rate (with ``q`` the
    optional measurement rate, defaulting to ``p``) or any
    :class:`~repro.surface_code.noise.NoiseModel` — round-dependent
    models such as ``drift`` are sampled with the trial's round index.
    Returns an :class:`OnlineOutcome`; ``failed`` is True on Reg overflow
    or on a residual logical error after the final drain.

    ``engine_factory`` swaps in an alternative engine implementation
    with the ``QecoolEngine`` constructor/generator contract — used by
    ``benchmarks/bench_engine.py`` to race the array-native engine
    against the frozen pre-rewrite baseline on identical trials.

    Monte-Carlo points batch trials across a chunk with
    :func:`run_online_chunk` instead (bit-identical outcomes).
    """
    if n_rounds < 1:
        raise ValueError(f"n_rounds must be >= 1, got {n_rounds}")
    rng = make_rng(rng)
    noise = _resolve_trial_noise(p, q)
    factory = QecoolEngine if engine_factory is None else engine_factory
    engine = factory(lattice, thv=config.thv, reg_size=config.reg_size)
    budget = config.cycles_per_interval
    # With no cycle deadline the decode between rounds always runs to
    # IDLE, so the engine can advance synchronously (no generator); a
    # finite clock needs run()'s resumable cycle stream.  The baseline
    # engine hook predates run_to_idle, so it always takes the
    # generator path.
    unconstrained = math.isinf(budget) and hasattr(engine, "run_to_idle")
    gen = None if unconstrained else engine.run(drain=False)

    # Per-trial scratch, allocated once and reused across rounds.
    error = np.zeros(lattice.n_data, dtype=np.uint8)
    prev_raw = np.zeros(lattice.n_ancillas, dtype=np.uint8)
    compensation = np.zeros(lattice.n_ancillas, dtype=np.uint8)
    events_row = np.empty(lattice.n_ancillas, dtype=np.uint8)
    wall = 0.0  # decoder-cycle wall clock
    consumed_matches = 0

    for k in range(n_rounds + 1):
        final_round = k == n_rounds
        if final_round:
            raw = lattice.syndrome_of(error)
        else:
            data_flips, meas_flips = noise.sample_round(lattice, rng, t=k, n_rounds=n_rounds)
            error ^= data_flips
            raw = lattice.syndrome_of(error) ^ meas_flips
        np.bitwise_xor(raw, prev_raw, out=events_row)
        events_row ^= compensation
        prev_raw[:] = raw
        compensation.fill(0)

        if not engine.push_layer(events_row):
            return OnlineOutcome(
                failed=True,
                overflow=True,
                layer_cycles=list(engine.layer_cycles),
                matches=list(engine.matches),
                n_rounds=k,
            )

        if math.isinf(budget):
            arrival, deadline = 0.0, math.inf
        else:
            arrival, deadline = k * budget, (k + 1) * budget
        wall = max(wall, arrival)
        if final_round:
            engine.begin_drain()
            deadline = math.inf
        if unconstrained:
            engine.run_to_idle()
        else:
            for chunk in gen:
                if chunk == IDLE:
                    break
                wall += chunk
                if wall >= deadline:
                    break
        # Apply the window's corrections physically before the next round.
        new_matches = engine.matches[consumed_matches:]
        consumed_matches = len(engine.matches)
        if new_matches:
            window_correction = correction_from_matches(lattice, new_matches)
            error ^= window_correction
            compensation[:] = lattice.syndrome_of(window_correction)

    failed = logical_failure(
        lattice, error, np.zeros(lattice.n_data, dtype=np.uint8)
    )
    return OnlineOutcome(
        failed=failed,
        overflow=False,
        layer_cycles=list(engine.layer_cycles),
        matches=list(engine.matches),
        n_rounds=n_rounds,
    )


class StreamingBlock:
    """Shot-major state slab shared by a batch of streaming shots.

    Holds the per-shot ``error`` / ``prev_raw`` / ``compensation`` rows
    of every shot in a batch as three contiguous arrays, so
    :func:`advance_streaming_round` can gather and scatter the whole
    round's state with single fancy-index operations instead of one
    Python row copy per shot.  Rows are allocated to shots on admission
    and recycled on retirement (the decode service's scheduler keeps
    one block per micro-batch shape group); shots hold *views* into the
    block, so :meth:`grow` reallocations require :meth:`OnlineShot.rebind`
    on every live shot — the scheduler owns that bookkeeping.
    """

    def __init__(self, lattice: PlanarLattice, capacity: int = 64):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.lattice = lattice
        self.capacity = capacity
        self.errors = np.zeros((capacity, lattice.n_data), dtype=np.uint8)
        self.prev = np.zeros((capacity, lattice.n_ancillas), dtype=np.uint8)
        self.comp = np.zeros((capacity, lattice.n_ancillas), dtype=np.uint8)
        self._free = list(range(capacity - 1, -1, -1))

    @property
    def n_free(self) -> int:
        """Rows currently unallocated."""
        return len(self._free)

    def alloc(self) -> int:
        """Claim a zeroed row; grows the block when none are free."""
        if not self._free:
            self.grow()
        row = self._free.pop()
        self.errors[row] = 0
        self.prev[row] = 0
        self.comp[row] = 0
        return row

    def release(self, row: int) -> None:
        """Return a retired shot's row to the free list."""
        self._free.append(row)

    def grow(self) -> None:
        """Double capacity, preserving live rows.

        Existing views go stale: every live shot must ``rebind``.
        """
        old = self.capacity
        self.capacity = old * 2
        for name in ("errors", "prev", "comp"):
            block = getattr(self, name)
            grown = np.zeros((self.capacity,) + block.shape[1:], dtype=np.uint8)
            grown[:old] = block
            setattr(self, name, grown)
        self._free.extend(range(self.capacity - 1, old - 1, -1))


class StreamingShotState:
    """Shared per-shot state of the streaming-shot protocol.

    The plumbing every shot kind needs — the physical error row, the
    previous raw syndrome, the pending correction compensation (views
    into a shared :class:`StreamingBlock` when batched, private arrays
    otherwise), the noise substream and its python-float rate table,
    and the round counter.  Concrete shots (:class:`OnlineShot` here,
    ``WindowShot`` in :mod:`repro.service.session`) add their decode
    state and implement ``step()``, ``finish_pair()`` and
    ``finalize()``.
    """

    __slots__ = (
        "lattice", "noise", "n_rounds", "rng",
        "error", "prev_raw", "compensation", "k", "outcome",
        "block", "row", "_rates",
    )

    def __init__(
        self,
        lattice: PlanarLattice,
        noise: NoiseModel,
        n_rounds: int,
        rng: np.random.Generator | int | None,
        block: StreamingBlock | None,
    ):
        if n_rounds < 1:
            raise ValueError(f"n_rounds must be >= 1, got {n_rounds}")
        self.lattice = lattice
        self.noise = noise
        self.n_rounds = n_rounds
        self.rng = make_rng(rng)
        # State rows: views into a shared StreamingBlock when batched
        # (row released by the owner at retirement), private arrays
        # otherwise — identical semantics either way.
        self.block = block
        if block is None:
            self.row = -1
            self.error = np.zeros(lattice.n_data, dtype=np.uint8)
            self.prev_raw = np.zeros(lattice.n_ancillas, dtype=np.uint8)
            self.compensation = np.zeros(lattice.n_ancillas, dtype=np.uint8)
        else:
            self.row = block.alloc()
            self.rebind()
        self.k = 0
        self.outcome = None
        # Python-float rate table: one tuple per round, so the per-round
        # batch loop never touches numpy scalars.
        self._rates = [
            (float(p_t), float(q_t))
            for p_t, q_t in zip(
                noise.data_schedule(n_rounds), noise.meas_schedule(n_rounds)
            )
        ]

    def rebind(self) -> None:
        """Refresh the block-row views (after ``StreamingBlock.grow``)."""
        self.error = self.block.errors[self.row]
        self.prev_raw = self.block.prev[self.row]
        self.compensation = self.block.comp[self.row]

    def rates(self) -> tuple[float, float]:
        """This round's (data, measurement) flip rates — exactly what
        ``noise.sample_round(..., t=k, n_rounds=n_rounds)`` would use."""
        return self._rates[self.k]


class OnlineShot(StreamingShotState):
    """Streaming state of one online decode, advanced round by round.

    The session-granular unit under both :func:`run_online_chunk` and
    the decode service's micro-batching scheduler
    (:mod:`repro.service.scheduler`): everything one trial owns — the
    engine, its resumable Controller generator, the physical error
    state, the previous raw syndrome, the pending correction
    compensation, the wall clock and the noise substream — bundled so
    shots can be **added to or removed from a running batch between
    rounds**.  :func:`advance_streaming_round` advances any set of
    same-lattice shots one round in lock-step; a shot fed one round at
    a time evolves bit-identically to :func:`run_online_trial` on the
    same seed, whatever other shots share its batches.
    """

    __slots__ = (
        "config", "engine", "wall",
        "_budget", "_unconstrained", "_gen", "_at_idle", "_consumed",
    )

    kind = "online"

    def __init__(
        self,
        lattice: PlanarLattice,
        noise: NoiseModel,
        n_rounds: int,
        config: OnlineConfig,
        rng: np.random.Generator | int | None,
        engine: QecoolEngine | None = None,
        block: StreamingBlock | None = None,
    ):
        super().__init__(lattice, noise, n_rounds, rng, block)
        self.config = config
        # ``engine`` lets the service recycle a pooled (reset) engine of
        # the same (lattice, thv, reg_size) shape instead of allocating.
        self.engine = (
            QecoolEngine(lattice, thv=config.thv, reg_size=config.reg_size)
            if engine is None
            else engine
        )
        self._budget = config.cycles_per_interval
        self._unconstrained = math.isinf(self._budget)
        # A finite clock needs run()'s resumable cycle stream (decodes
        # freeze mid-sweep at the interval boundary); without a deadline
        # the engine advances synchronously via run_to_idle().
        self._gen = None if self._unconstrained else self.engine.run(drain=False)
        self._at_idle = True
        self.wall = 0.0
        self._consumed = 0

    def step(
        self, events_row: np.ndarray, empty: bool
    ) -> tuple[str, np.ndarray | None]:
        """Consume round ``k``'s detection events; decode under the clock.

        ``events_row`` is the round's detection-event layer, already
        XOR-folded against ``prev_raw``/``compensation`` by the caller
        (:func:`advance_streaming_round`, which also batch-updates
        those rows; ``empty`` flags an all-zero layer).  Returns
        ``(status, correction)`` with status ``"running"``/``"done"``/
        ``"overflow"``; a non-None correction has been applied to
        ``error`` and still needs its compensation syndrome (batched by
        the caller into ``compensation``).
        """
        final = self.k == self.n_rounds
        engine = self.engine
        # Empty layer into an IDLE-parked engine: the simulated path is
        # a fixed state delta in two common streaming cases — an empty
        # engine (immediate pop, no sinks: idle_layer_fast) and events
        # still waiting on the thv look-ahead with no newly-exposed
        # sink (try_push_empty_idle).  Both are bit-identical to the
        # generator path and never touch it.
        if empty and not final and self._at_idle:
            if not engine._live and not engine.m:
                cost = engine.idle_layer_fast()
                if not self._unconstrained:
                    self.wall = max(self.wall, self.k * self._budget) + cost
                self.k += 1
                return "running", None
            absorbed = engine.try_push_empty_idle()
            if absorbed:
                if not self._unconstrained:
                    self.wall = max(self.wall, self.k * self._budget)
                self.k += 1
                return "running", None
            if absorbed is False:
                self.outcome = OnlineOutcome(
                    failed=True,
                    overflow=True,
                    layer_cycles=list(engine.layer_cycles),
                    matches=list(engine.matches),
                    n_rounds=self.k,
                )
                return "overflow", None
        if not engine.push_layer(events_row):
            self.outcome = OnlineOutcome(
                failed=True,
                overflow=True,
                layer_cycles=list(engine.layer_cycles),
                matches=list(engine.matches),
                n_rounds=self.k,
            )
            return "overflow", None
        if self._unconstrained:
            deadline = math.inf
        else:
            self.wall = max(self.wall, self.k * self._budget)
            deadline = (self.k + 1) * self._budget
        if final:
            engine.begin_drain()
            deadline = math.inf
        if self._unconstrained:
            engine.run_to_idle()
        else:
            wall = self.wall
            at_idle = True  # generator exhaustion (drain) parks clean too
            for chunk in self._gen:
                if chunk == IDLE:
                    break
                wall += chunk
                if wall >= deadline:
                    at_idle = False
                    break
            self.wall = wall
            self._at_idle = at_idle
        self.k += 1
        new_matches = engine.matches[self._consumed :]
        self._consumed = len(engine.matches)
        correction = None
        if new_matches:
            correction = correction_from_matches(self.lattice, new_matches)
            self.error ^= correction
        return ("done" if final else "running"), correction

    def finish_pair(self) -> tuple[np.ndarray, np.ndarray | None]:
        """(final error, correction) for the batched logical-failure
        check; ``None`` means the all-zero correction (online shots
        apply corrections physically as they stream)."""
        return self.error, None

    def finalize(self, failed: bool) -> None:
        """Record the end-of-trial outcome after the failure check."""
        engine = self.engine
        self.outcome = OnlineOutcome(
            failed=bool(failed),
            overflow=False,
            layer_cycles=list(engine.layer_cycles),
            matches=list(engine.matches),
            n_rounds=self.n_rounds,
        )


def advance_streaming_round(
    lattice: PlanarLattice,
    shots: Sequence["OnlineShot"],
    block: StreamingBlock | None = None,
) -> tuple[list, list]:
    """Advance every shot one measurement round, batched across shots.

    The micro-batching kernel: per-round noise sampling (each shot's
    own substream and schedule — shots may sit at *different* round
    indices, carry different noise models, clocks and round budgets),
    syndrome extraction, detection-event folding and
    correction-compensation syndromes each run as one vectorized pass
    over the batch; only the engine advance is per shot.  Membership is
    free to change between calls — that is what the decode service's
    scheduler does — and every shot's evolution is bit-identical to
    running it alone (``tests/test_online.py``,
    ``tests/test_service.py``).

    ``shots`` may mix any objects implementing the streaming-shot
    protocol (see :class:`OnlineShot`) on the same lattice.  When every
    shot's state rows live in ``block`` (a shared
    :class:`StreamingBlock`), pass it so the per-round state traffic
    runs as whole-batch gathers/scatters instead of per-shot row
    copies.  Returns ``(running, finished)``, each preserving input
    order; finished shots have ``outcome`` set.
    """
    n = len(shots)
    if not n:
        return [], []
    noisy = [i for i, s in enumerate(shots) if s.k < s.n_rounds]
    if noisy:
        nn = len(noisy)
        n_data = lattice.n_data
        # One contiguous uniform block per shot: filling the joined row
        # draws the exact same stream as the data block followed by the
        # measurement block (numpy fills sequentially), which is the
        # sample_round layout.
        uniforms = np.empty((nn, n_data + lattice.n_ancillas))
        rates = []
        for j, i in enumerate(noisy):
            shot = shots[i]
            shot.rng.random(out=uniforms[j])
            rates.append(shot.rates())
        pq = np.asarray(rates)
        data_flips = (uniforms[:, :n_data] < pq[:, 0:1]).view(np.uint8)
        meas_flips = (uniforms[:, n_data:] < pq[:, 1:2]).view(np.uint8)
    if block is not None:
        # Slab path: one fancy-index gather/scatter per array.
        rows = np.fromiter((s.row for s in shots), np.intp, n)
        if rows.min() < 0:
            # A block-less shot carries row == -1, which would silently
            # alias the slab's last row and corrupt a co-tenant.
            raise ValueError("every shot must hold a row in the passed block")
        errors = block.errors[rows]
        if noisy:
            errors[noisy] ^= data_flips
            block.errors[rows] = errors
        raws = lattice.syndrome_of_batch(errors)
        if noisy:
            raws[noisy] ^= meas_flips
        events = raws ^ block.prev[rows] ^ block.comp[rows]
        block.prev[rows] = raws
        block.comp[rows] = 0
    else:
        if noisy:
            for j, i in enumerate(noisy):
                shot = shots[i]
                np.bitwise_xor(shot.error, data_flips[j], out=shot.error)
        errors = np.empty((n, lattice.n_data), dtype=np.uint8)
        prev = np.empty((n, lattice.n_ancillas), dtype=np.uint8)
        comp = np.empty((n, lattice.n_ancillas), dtype=np.uint8)
        for i, shot in enumerate(shots):
            errors[i] = shot.error
            prev[i] = shot.prev_raw
            comp[i] = shot.compensation
        raws = lattice.syndrome_of_batch(errors)
        if noisy:
            raws[noisy] ^= meas_flips
        events = raws ^ prev ^ comp
        for i, shot in enumerate(shots):
            shot.prev_raw[:] = raws[i]
            shot.compensation.fill(0)
    nonempty = events.any(axis=1)

    running: list = []
    done: list = []
    finished: list = []
    corrected: list = []
    corrections: list[np.ndarray] = []
    for i, shot in enumerate(shots):
        status, correction = shot.step(events[i], not nonempty[i])
        if status == "overflow":
            finished.append(shot)
            continue
        if status == "running":
            if correction is not None:
                corrected.append(shot)
                corrections.append(correction)
            running.append(shot)
        else:
            done.append(shot)
    if corrections:
        comp_rows = lattice.syndrome_of_batch(np.stack(corrections))
        for shot, row in zip(corrected, comp_rows):
            shot.compensation[:] = row
    if done:
        final_errors = np.empty((len(done), lattice.n_data), dtype=np.uint8)
        final_corrections = np.zeros((len(done), lattice.n_data), dtype=np.uint8)
        for j, shot in enumerate(done):
            error, correction = shot.finish_pair()
            final_errors[j] = error
            if correction is not None:
                final_corrections[j] = correction
        fails = logical_failures_batch(lattice, final_errors, final_corrections)
        for shot, fail in zip(done, fails):
            shot.finalize(bool(fail))
        finished.extend(done)
    return running, finished


def run_online_chunk(
    lattice: PlanarLattice,
    p: float | NoiseModel,
    n_rounds: int,
    config: OnlineConfig,
    rngs: Sequence[np.random.Generator],
    q: float | None = None,
) -> list[OnlineOutcome]:
    """Run a chunk of online trials batched across shots.

    **Bit-identical** to calling :func:`run_online_trial` once per
    generator in ``rngs`` (covered by ``tests/test_online.py``): each
    shot keeps its own engine, wall clock and noise substream
    (:class:`OnlineShot`), but the per-round heavy lifting — noise
    sampling, syndrome extraction, event folding and
    correction-compensation syndromes — runs as one vectorized
    :func:`advance_streaming_round` pass over the still-active shots.
    Shots drop out of the batch when their Reg overflows, exactly where
    their per-shot trial would return.
    """
    if n_rounds < 1:
        raise ValueError(f"n_rounds must be >= 1, got {n_rounds}")
    noise = _resolve_trial_noise(p, q)
    rngs = list(rngs)
    block = StreamingBlock(lattice, capacity=max(1, len(rngs)))
    shots = [
        OnlineShot(lattice, noise, n_rounds, config, rng, block=block)
        for rng in rngs
    ]
    active: list = list(shots)
    for _ in range(n_rounds + 1):
        active, _ = advance_streaming_round(lattice, active, block=block)
    return [shot.outcome for shot in shots]  # type: ignore[misc]
