"""Cycle-level behavioural machine for the QECOOL architecture.

This is the decoder of Algorithm 1, modelled at the level the paper's
evaluation consumes: matching decisions (who pairs with whom) and
execution cycles per layer (Table III).  The machine simulates

- one **Unit** per ancilla with a ``Reg`` queue of detection events
  (a bitmask; bit ``b`` set = unmatched event ``b`` layers above the
  oldest stored measurement),
- **Row Masters** that skip token distribution over event-free rows,
- shared west/east **Boundary Units** that answer every spike request
  (half a cycle late, to lose ties against normal Units),
- the **Controller**'s row-major token scan with a growing timeout: in
  outer iteration ``C`` a sink only completes matches whose race winner
  needs at most ``C`` hops, so close pairs match before far ones — the
  greedy growing-radius policy.

Cycle accounting (see ``docs/DESIGN.md`` section 4):

==========================  =======================================
action                      cycles
==========================  =======================================
Row Master skips a row      1
token crosses an active row  ``cols`` (one per Unit hand-off)
sink matches at distance h  ``2 h + 2`` (request, spike in, syndrome
                            back, finish)
sink times out at budget C  ``2 C + 2``
layer pop (shift)           1 + one row scan (shift detection)
==========================  =======================================

Sweeps guaranteed to produce no matches (every live sink's winner needs
more hops than the current budget) are *accounted analytically* instead
of simulated unit-by-unit — bit-exact same cycles and matches, hundreds
of times faster.

The Unit state is **array-native** (see ``docs/DESIGN.md`` section 5):
one ``uint64`` Reg mask per ancilla in a flat numpy vector (with a
plain-int mirror for the scalar inner loops), per-lattice geometry
tables (pairwise Manhattan distances, arrival-port priorities, packed
boundary keys) cached once and shared across shots, and every race
candidate represented as a single ``int64`` **packed key** whose
integer order equals the race-resolution order of
:attr:`repro.core.spike.SpikeCandidate.key` (doubled arrival | port |
source depth | source index).  The winner race is evaluated — whenever
the live-sink x live-event workload is big enough to amortise numpy
dispatch — as one broadcast pass reduced by ``argmin``; small workloads
take an equivalent scalar scan.

A lazily-validated winner cache (packed keys) sits on top.  Matches
only ever *remove* candidates, so a cached winner stays optimal while
the event bit it races to survives — and when that bit is gone the
stale entry is still a **lower bound** on the new winner, which lets
the Controller charge timeouts and skip minimum recomputation without
resolving the race again.  Pushes invalidate selectively (a new event
must race in strictly faster to evict an entry); cache keys use
absolute depths, so pops need no reindexing (dead entries are purged
once they outnumber the live working set).  The ``uint64`` store caps
the Reg at 64 stored layers — far
above the paper's 7-bit hardware and every batch workload (``d + 1``
layers); exceeding it raises.

The engine is resumable: :meth:`QecoolEngine.run` is a generator that
yields the cycle cost of each atomic action, so the online simulator
(:mod:`repro.core.online`) can interleave decoding with measurement
arrivals under a finite clock.  The sentinel :data:`IDLE` is yielded when
nothing is matchable or poppable (the hardware would spin waiting for
the next measurement).
"""

from __future__ import annotations

from collections.abc import Iterator
from functools import lru_cache

import numpy as np

from repro.core.kernels import Geometry, resolve_kernel_backend
from repro.core.spike import (
    PRIORITY_EAST,
    PRIORITY_NORTH,
    PRIORITY_SOUTH,
    PRIORITY_WEST,
    boundary_spikes,
    port_table,
)
from repro.decoders.base import BOUNDARY_EAST, BOUNDARY_WEST, Match
from repro.surface_code.lattice import PlanarLattice

__all__ = ["IDLE", "MAX_LAYERS", "QecoolEngine"]

IDLE = -1
"""Yielded by :meth:`QecoolEngine.run` when the engine has nothing to do."""

MAX_LAYERS = 64
"""Reg depth ceiling of the ``uint64`` array state (paper hardware: 7)."""

_ONE = np.uint64(1)

# Packed-key sentinel: larger than any real candidate's packed key.
_NO_CANDIDATE = 2**62

# Below this many sink x live-event pairs the broadcast race costs more
# in numpy dispatch than it saves; an equivalent scalar scan runs
# instead.  Chosen empirically on the d=9 online operating point; any
# value is bit-exact (both paths implement the same total order).
_BULK_CUTOFF = 192


def _fast_match(kind: str, a: tuple, b: tuple | None, side: str | None) -> Match:
    """Construct a :class:`Match` without ``__init__``/``__post_init__``.

    The engine emits on the order of one Match per defect pair per shot;
    skipping the frozen-dataclass ceremony (four guarded ``__setattr__``
    calls plus validation that the packed winner key already guarantees)
    is a measurable win.  Field-wise identical to ``Match(kind, a, b,
    side)`` for every combination the engine produces.
    """
    match = Match.__new__(Match)
    d = match.__dict__
    d["kind"] = kind
    d["a"] = a
    d["b"] = b
    d["side"] = side
    return match


@lru_cache(maxsize=None)
def _packed_boundaries(lattice: PlanarLattice) -> tuple[int, ...]:
    """Packed race keys of every ancilla's nearest-Boundary-Unit spike.

    Cached per lattice (``PlanarLattice`` hashes by ``d``), shared by
    every engine on every shot.
    """
    radix = lattice.n_ancillas + 1
    # arrival is dist + 0.5, so the doubled arrival digit is odd —
    # boundary keys can never tie a pair or vertical key.
    return tuple(
        (int(cand.arrival * 2) * 8 + cand.port) * 128 * radix
        for cand in boundary_spikes(lattice)
    )


@lru_cache(maxsize=None)
def _packed_boundaries_arr(lattice: PlanarLattice) -> np.ndarray:
    """:func:`_packed_boundaries` as a read-only int64 vector."""
    arr = np.asarray(_packed_boundaries(lattice), dtype=np.int64)
    arr.setflags(write=False)
    return arr


@lru_cache(maxsize=None)
def _depth_key_table(lattice: PlanarLattice) -> np.ndarray:
    """Packed-key contribution of a source depth, indexed by ``t_rel``.

    ``table[t] = t * (2048 + 1) * radix`` — the source depth raises the
    doubled-arrival digit and fills the depth digit.  Index 64 (the
    lowest-set-bit result of an empty shifted mask) holds the
    no-candidate sentinel, so empty Units fall out of the race without
    a masking pass.  Cached per lattice, read-only, int64.
    """
    radix = lattice.n_ancillas + 1
    table = np.arange(MAX_LAYERS + 1, dtype=np.int64) * (2049 * radix)
    table[MAX_LAYERS] = _NO_CANDIDATE
    table.setflags(write=False)
    return table


@lru_cache(maxsize=None)
def _pair_base_table(lattice: PlanarLattice) -> np.ndarray:
    """Depth-independent part of every pair candidate's packed key.

    ``base[sink, source] = (dist * 16 + port) * 128 * radix + source + 1``
    — the full packed key is ``base + t_rel * (2048 * radix + radix)``
    (the source depth raises both the arrival digit and the depth
    digit).  The diagonal holds the no-candidate sentinel: a Unit never
    pairs with itself (its own later events race as vertical
    candidates).  Cached per lattice, read-only, int64.
    """
    radix = lattice.n_ancillas + 1
    dist = lattice.pairwise_manhattan.astype(np.int64)
    ports = port_table(lattice).astype(np.int64)
    base = (dist * 16 + ports) * (128 * radix) + (
        np.arange(lattice.n_ancillas, dtype=np.int64)[None, :] + 1
    )
    np.fill_diagonal(base, _NO_CANDIDATE)
    base.setflags(write=False)
    return base


@lru_cache(maxsize=None)
def _kernel_geometry(lattice: PlanarLattice) -> Geometry:
    """The race-geometry bundle every kernel-backend call receives.

    Cached per lattice (the tables themselves already are); shared by
    the scalar and batch engines.
    """
    radix = lattice.n_ancillas + 1
    return Geometry(
        pair_base=_pair_base_table(lattice),
        depth_lut=_depth_key_table(lattice),
        bpacked=_packed_boundaries_arr(lattice),
        bpacked_t=_packed_boundaries(lattice),
        radix=radix,
        hops_div=1024 * radix,
        rows=lattice.rows,
        cols=lattice.cols,
    )


class QecoolEngine:
    """The QECOOL decoding machine for one logical-qubit sector.

    Parameters
    ----------
    lattice:
        Geometry (Unit grid shape, boundary distances, correction paths).
    thv:
        Vertical look-ahead threshold: a base layer ``b`` is only
        decodable once ``m - b > thv`` measurements are stored.  ``-1``
        disables the wait (batch-QECOOL / 2-D); the paper's online
        configuration uses 3.
    reg_size:
        ``Reg`` capacity in bits; ``None`` means unbounded (batch).  The
        paper's hardware uses 7.  Pushing a layer when full signals
        overflow (the trial fails).  The array state caps even the
        unbounded Reg at :data:`MAX_LAYERS` stored layers.
    nlimit:
        Maximum hop budget of the Controller's growing timeout; defaults
        to the lattice diameter plus ``Reg`` depth, which guarantees any
        defect can reach a partner or the boundary.
    kernel_backend:
        Hot-kernel backend name (see :mod:`repro.core.kernels`), a
        backend instance, or ``None`` for the process default
        (``numpy`` unless overridden).  Backends never change
        observables — matches and cycles are bit-identical.
    """

    def __init__(
        self,
        lattice: PlanarLattice,
        thv: int = -1,
        reg_size: int | None = None,
        nlimit: int | None = None,
        kernel_backend=None,
    ):
        if thv < -1:
            raise ValueError(f"thv must be >= -1, got {thv}")
        if reg_size is not None and reg_size < 1:
            raise ValueError(f"reg_size must be >= 1, got {reg_size}")
        if reg_size is not None and reg_size > MAX_LAYERS:
            raise ValueError(
                f"reg_size must be <= {MAX_LAYERS} (uint64 array state),"
                f" got {reg_size}"
            )
        self.lattice = lattice
        self.thv = thv
        self.reg_size = reg_size
        self._depth_hint = reg_size if reg_size is not None else lattice.d + 1
        self.nlimit = (
            nlimit
            if nlimit is not None
            else lattice.rows + lattice.cols + self._depth_hint + 2
        )
        # Unit state: one uint64 event bitmask per ancilla (flat
        # row-major index) in a numpy vector — the canonical store for
        # every vectorized pass — mirrored into plain ints for the
        # scalar inner loops, plus the set of live (event-holding)
        # Units, per-row occupancy counts, and a lazily-validated cache
        # of packed race-winner keys (see docs/DESIGN.md section 5).
        self._masks = np.zeros(lattice.n_ancillas, dtype=np.uint64)
        self._mask_ints: list[int] = [0] * lattice.n_ancillas
        self._live: set[int] = set()
        self._live_arr: np.ndarray | None = None  # rebuilt lazily on change
        self._l0 = 0  # Units with a layer-0 event (shift-detection count)
        self.m = 0  # layers currently stored
        self.popped = 0  # layers shifted out so far (absolute-time offset)
        self._row_counts: list[int] = [0] * lattice.rows
        self._winner_cache: dict[tuple[int, int], int] = {}
        # Geometry tables, cached per lattice and shared across shots.
        self._dist = lattice.pairwise_manhattan
        self._ports = port_table(lattice)
        self._bpacked = _packed_boundaries(lattice)
        self._bpacked_arr = _packed_boundaries_arr(lattice)
        self._pair_base = _pair_base_table(lattice)
        self._depth_lut = _depth_key_table(lattice)
        self._radix = lattice.n_ancillas + 1  # packed-key source digit
        self._kernel = resolve_kernel_backend(kernel_backend)
        self._geo = _kernel_geometry(lattice)
        # Accounting.
        self.cycles = 0
        self._cycles_at_last_pop = 0
        self.layer_cycles: list[int] = []
        self.matches: list[Match] = []
        self._drain = False
        # Optional repro.obs.trace.Tracer; None (the default) keeps the
        # decode loop entirely untimed.
        self.tracer = None

    # ------------------------------------------------------------------
    # Measurement interface
    # ------------------------------------------------------------------
    @property
    def masks(self) -> list[int]:
        """Unit Reg bitmasks as plain ints (row-major view of the
        ``uint64`` array state; do not mutate)."""
        return list(self._mask_ints)

    def push_layer(self, events_row: np.ndarray) -> bool:
        """Store one layer of detection events at the back of every Reg.

        Returns ``False`` on overflow (Reg full) — the paper counts the
        trial as a failure.  The layer is *not* stored in that case.
        """
        if self.reg_size is not None and self.m >= self.reg_size:
            return False
        if self.m >= MAX_LAYERS:
            raise ValueError(
                f"array engine stores at most {MAX_LAYERS} layers; pop or"
                " drain before pushing more"
            )
        if type(events_row) is not np.ndarray or events_row.dtype != np.uint8:
            events_row = np.asarray(events_row, dtype=np.uint8)
        if events_row.shape != (self.lattice.n_ancillas,):
            raise ValueError(
                f"events_row must have shape ({self.lattice.n_ancillas},),"
                f" got {events_row.shape}"
            )
        bit = 1 << self.m
        pushed = np.flatnonzero(events_row)
        pushed_list = pushed.tolist()
        if pushed_list:
            mask_ints = self._mask_ints
            cols = self.lattice.cols
            for a in pushed_list:
                old = mask_ints[a]
                if not old:
                    self._live.add(a)
                    self._live_arr = None
                    self._row_counts[a // cols] += 1
                mask_ints[a] = old | bit
            self._masks[pushed] |= np.uint64(bit)
            if bit == 1:  # pushing layer 0: the Reg was empty
                self._l0 += len(pushed_list)
        t_new = self.m
        self.m += 1
        # Selective cache invalidation: a cached winner is only beaten if
        # one of the *new* events races in faster (exact key comparison;
        # a new event in a Unit with an earlier event at/above the base
        # can never beat the already-considered earlier one).
        if pushed_list and self._winner_cache:
            self._invalidate_after_push(pushed, pushed_list, t_new)
        return True

    def _invalidate_after_push(
        self, pushed: np.ndarray, pushed_list: list[int], t_new: int
    ) -> None:
        """Drop cached winners that a just-pushed event would outrace.

        Compares packed candidate keys — bit-equivalent to rebuilding
        each candidate and comparing ``cand.key < win.key`` tuples.  One
        broadcast over (cache entries) x (new events) when the workload
        is large; a scalar scan below the cutoff.
        """
        cache = self._winner_cache
        radix = self._radix
        hops_div = 1024 * self._radix
        t_new_abs = self.popped + t_new
        if len(cache) * len(pushed_list) < _BULK_CUTOFF:
            pair_base = self._pair_base
            depth_step = 2049 * radix
            stale_keys = []
            for (idx, b_abs), win_packed in cache.items():
                t_rel = t_new_abs - b_abs  # >= 1: cached bases sit below the new layer
                if win_packed // hops_div >> 1 < t_rel:
                    # A new event races in no faster than its depth;
                    # winners already beating that depth are safe.
                    continue
                depth = t_rel * depth_step
                vert = (t_rel * 16 * 128 + t_rel) * radix
                for a in pushed_list:
                    cand = vert if a == idx else int(pair_base[idx, a]) + depth
                    if cand < win_packed:
                        stale_keys.append((idx, b_abs))
                        break
            for key in stale_keys:
                del cache[key]
            return
        keys = list(cache)
        n_entries = len(keys)
        sink_idx = np.fromiter((k[0] for k in keys), np.int64, n_entries)
        bs = np.fromiter((k[1] for k in keys), np.int64, n_entries)
        win_packed = np.fromiter(cache.values(), np.int64, n_entries)
        t_rel = t_new_abs - bs
        # A new event races in no faster than its depth below the new
        # layer, so only winners needing at least that many hops can be
        # beaten — the broadcast runs over that subset alone.
        beatable = (win_packed // hops_div >> 1) >= t_rel
        if not beatable.any():
            return
        rows = np.flatnonzero(beatable)
        sink_idx = sink_idx[rows]
        win_packed = win_packed[rows]
        t_rel = t_rel[rows]
        dist = self._dist[sink_idx[:, None], pushed[None, :]].astype(np.int64)
        ports = self._ports[sink_idx[:, None], pushed[None, :]].astype(np.int64)
        arrival = t_rel[:, None] + dist
        cand = ((arrival * 16 + ports) * 128 + t_rel[:, None]) * radix + (
            pushed[None, :] + 1
        )
        # A new event in the sink's own Unit races as a vertical
        # candidate (no travel, internal port, no source digit).
        vert = (t_rel * 16 * 128 + t_rel) * radix
        cand = np.where(pushed[None, :] == sink_idx[:, None], vert[:, None], cand)
        stale = (cand < win_packed[:, None]).any(axis=1)
        for i in rows[np.flatnonzero(stale)].tolist():
            del cache[keys[i]]

    def begin_drain(self) -> None:
        """Lift the ``thv`` wait: measurements have ended, decode all
        remaining layers (end-of-experiment flush)."""
        self._drain = True

    def idle_layer_fast(self) -> int:
        """Absorb one *empty* measurement layer while empty and idle.

        Session-granular fast entry for streaming callers: when the
        engine holds no events, stores no layers, and its Controller is
        parked at IDLE (or a fresh :meth:`run` generator / the sync
        path), pushing an all-zero layer and running back to IDLE is a
        fixed state delta — the layer is popped immediately (``1`` shift
        cycle plus a ``1``-cycle Row-Master skip per row) and the survey
        finds no sinks.  This method applies that delta directly —
        ``popped``, ``cycles`` and ``layer_cycles`` advance exactly as
        the simulated path would — and returns the charged cost (the
        caller's wall clock still pays it).  Callers must NOT also call
        :meth:`push_layer` for the layer.  Raises if the engine is not
        in the empty-idle state (the caller's dispatch is wrong).
        """
        if self._live or self.m or self._drain:
            raise RuntimeError(
                "idle_layer_fast requires an empty, non-draining engine"
            )
        cost = self._charge(1 + self.lattice.rows)
        self.popped += 1
        # Mirror _pop's dead-entry purge so cache growth stays bounded
        # on long-running sessions regardless of which path their empty
        # rounds take (contents are a performance detail, never
        # observable in matches or cycle accounting).
        if len(self._winner_cache) > 32:
            cutoff = self.popped
            self._winner_cache = {
                k: v for k, v in self._winner_cache.items() if k[1] >= cutoff
            }
        self.layer_cycles.append(self.cycles - self._cycles_at_last_pop)
        self._cycles_at_last_pop = self.cycles
        return cost

    def try_push_empty_idle(self) -> bool | None:
        """Try to absorb an *empty* layer while parked at IDLE with
        events still waiting on the ``thv`` look-ahead.

        Companion fast entry to :meth:`idle_layer_fast` for the other
        common streaming case: the engine holds events (``m > 0``) but
        was parked at IDLE — no decodable sink — and the new layer is
        all zeros.  Pushing it changes nothing except ``m`` *unless*
        the one newly-exposed base depth (``b_max`` grows by one with
        ``m``) holds an event; layer 0 stays occupied (else IDLE would
        have popped it), so no shift fires, no sweep runs, no cycles
        are charged.  Returns ``True`` when the layer was absorbed
        (state delta: ``m += 1``), ``False`` on Reg overflow (the layer
        is *not* stored — the paper fails the trial), and ``None`` when
        the push would expose a decodable sink and the caller must take
        the simulated path instead.
        """
        if self._drain:
            return None
        if self.reg_size is not None and self.m >= self.reg_size:
            return False
        if self.m >= MAX_LAYERS:
            raise ValueError(
                f"array engine stores at most {MAX_LAYERS} layers; pop or"
                " drain before pushing more"
            )
        if self.thv >= 0:
            # After the push, b_max = (m + 1) - thv - 1 = m - thv; depths
            # at or below the old b_max were sink-free at IDLE, so only
            # the newly-exposed depth needs checking.
            exposed = self.m - self.thv
            if exposed >= 0:
                bit = 1 << exposed
                mask_ints = self._mask_ints
                for a in self._live:
                    if mask_ints[a] & bit:
                        return None
        # thv < 0 exposes depth m, beyond any stored event: always clear.
        self.m += 1
        return True

    def reset(self) -> "QecoolEngine":
        """Restore the just-constructed state, keeping geometry tables.

        Session-recycling entry for the decode service's engine pool: a
        retired session's engine is reset and reused for the next
        admission with the same ``(lattice, thv, reg_size)`` shape
        instead of re-running ``__init__`` (array allocation).  Any
        outstanding :meth:`run` generator must be discarded by the
        caller.  Returns ``self``.
        """
        self._masks.fill(0)
        self._mask_ints = [0] * self.lattice.n_ancillas
        self._live.clear()
        self._live_arr = None
        self._l0 = 0
        self.m = 0
        self.popped = 0
        self._row_counts = [0] * self.lattice.rows
        self._winner_cache = {}
        self.cycles = 0
        self._cycles_at_last_pop = 0
        self.layer_cycles = []
        self.matches = []
        self._drain = False
        return self

    @property
    def defects_remaining(self) -> int:
        """Unmatched detection events currently stored."""
        return int(np.bitwise_count(self._masks).sum())

    # ------------------------------------------------------------------
    # Controller
    # ------------------------------------------------------------------
    def run(self, drain: bool = False) -> Iterator[int]:
        """The Controller loop, as a generator of per-action cycle costs.

        With ``drain=True`` the generator terminates once every stored
        event is matched and every layer popped (batch decoding).  With
        ``drain=False`` it runs forever, yielding :data:`IDLE` whenever
        nothing is matchable or poppable — the caller then feeds more
        layers via :meth:`push_layer` (online decoding; call
        :meth:`begin_drain` to flush at the end).
        """
        if drain:
            self._drain = True
        budget = 1  # the Controller's growing hop budget, C in Algorithm 1
        stall_guard = 0
        while True:
            progressed = False
            # Shift detection: pop while the oldest layer is clear.
            while self.m > 0 and not self._layer0_occupied():
                yield self._pop()
                budget = 1  # `goto start loop` after SHIFTREG
                progressed = True
            if self._drain and self.m == 0:
                return
            b_max = self._b_max()
            n_sinks, need = self._survey(b_max)
            if not n_sinks:
                if self._drain and self.m > 0 and self.defects_remaining == 0:
                    # Only empty layers above a non-empty layer 0 cannot
                    # happen: layer 0 occupied implies a defect exists.
                    raise RuntimeError("drain stalled with no defects but layers left")
                yield IDLE
                budget = 1
                continue
            if need > budget:
                # Analytically account the fruitless sweeps in between.
                target = min(need, self.nlimit)
                for cl in range(budget, target):
                    yield self._sweep_overhead(b_max) + n_sinks * (2 * cl + 2)
                budget = target
            # One real sweep at the current budget.
            matched, popped_mid_sweep = yield from self._sweep(budget, b_max)
            progressed = progressed or matched or popped_mid_sweep
            if popped_mid_sweep:
                budget = 1  # `goto start loop` after SHIFTREG
            else:
                budget = budget + 1 if budget < self.nlimit else 1
            if progressed:
                stall_guard = 0
            else:
                stall_guard += 1
                if stall_guard > self.nlimit + self._depth_hint + 4:
                    raise RuntimeError(
                        "QECOOL engine made no progress over a full budget"
                        " cycle — matching policy bug"
                    )

    def decode_loaded(self) -> None:
        """Drain synchronously (batch decoding helper): run the Controller
        to completion, discarding the cycle stream (totals are still
        accumulated on the instance)."""
        self.run_to_idle(drain=True)

    def run_to_idle(self, drain: bool = False) -> None:
        """Advance the Controller until it has nothing to do, without the
        generator machinery of :meth:`run`.

        Bit-identical state evolution (matches, cycles, layer boundaries)
        to consuming :meth:`run` up to its next :data:`IDLE` — valid
        **only** when the caller imposes no cycle deadline (unbounded
        clock, or a full end-of-trial drain started before any
        generator-based decoding): the Controller's post-IDLE state is
        exactly "restart with budget 1", so there is no suspended sweep
        position to preserve.  With ``drain=True`` it runs until every
        layer is popped; otherwise it returns at the IDLE point and the
        caller pushes more layers before calling it again.  Never mix
        with a partially-consumed :meth:`run` generator on the same
        engine.

        MIRROR: this is :meth:`run`'s Controller loop without the yield
        plumbing — any change to either loop must be applied to both.
        """
        tracer = self.tracer
        if tracer is None:
            self._run_to_idle(drain)
            return
        t = tracer.clock()
        try:
            self._run_to_idle(drain)
        finally:
            tracer.add(
                "engine.run_to_idle", t, tracer.clock() - t,
                tag=self._kernel.name,
            )

    def _run_to_idle(self, drain: bool = False) -> None:
        if drain:
            self._drain = True
        budget = 1
        stall_guard = 0
        while True:
            progressed = False
            while self.m > 0 and not self._layer0_occupied():
                self._pop()
                budget = 1
                progressed = True
            if self._drain and self.m == 0:
                return
            b_max = self._b_max()
            n_sinks, need = self._survey(b_max)
            if not n_sinks:
                if self._drain and self.m > 0 and self.defects_remaining == 0:
                    raise RuntimeError("drain stalled with no defects but layers left")
                return
            if need > budget:
                # The fruitless sweeps are wall-clock-only (uncharged,
                # as in run()); with no deadline they vanish entirely.
                budget = min(need, self.nlimit)
            matched, popped_mid_sweep = self._sweep_sync(budget, b_max)
            progressed = progressed or matched or popped_mid_sweep
            if popped_mid_sweep:
                budget = 1
            else:
                budget = budget + 1 if budget < self.nlimit else 1
            if progressed:
                stall_guard = 0
            else:
                stall_guard += 1
                if stall_guard > self.nlimit + self._depth_hint + 4:
                    raise RuntimeError(
                        "QECOOL engine made no progress over a full budget"
                        " cycle — matching policy bug"
                    )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _b_max(self) -> int:
        """Largest decodable base depth (inclusive); -1 when none."""
        if self._drain or self.thv < 0:
            return self.m - 1
        return min(self.m - 1, self.m - self.thv - 1)

    def _layer0_occupied(self) -> bool:
        return self._l0 > 0

    def _clear_bit(self, idx: int, t: int) -> None:
        """Clear one event bit, keeping the mirror, live set, layer-0
        count and row occupancy counts in sync (matches only ever
        *clear* bits that are set)."""
        new = self._mask_ints[idx] & ~(1 << t)
        self._mask_ints[idx] = new
        self._masks[idx] = new
        if t == 0:
            self._l0 -= 1
        if not new:
            self._live.discard(idx)
            self._live_arr = None
            self._row_counts[idx // self.lattice.cols] -= 1

    def _live_units(self) -> np.ndarray:
        """The live Units as a sorted int64 index vector (cached until
        the live set changes)."""
        arr = self._live_arr
        if arr is None:
            arr = np.fromiter(self._live, np.int64, len(self._live))
            arr.sort()
            self._live_arr = arr
        return arr

    # ------------------------------------------------------------------
    # The winner race, on packed keys.
    #
    # A packed key is ((2 * arrival) * 8 + port) * 128 * radix +
    # t_rel * radix + src1, with src1 = flat source index + 1 (0 for
    # vertical/boundary candidates) and radix = n_ancillas + 1: integer
    # order equals the race-resolution order of SpikeCandidate.key, and
    # every field is recoverable (kind included: src1 > 0 is a pair,
    # src1 == 0 with t_rel > 0 vertical, with t_rel == 0 boundary).
    # The hop count is the top digit halved — exact for pairs/verticals
    # (even doubled arrival) and for boundaries (odd doubled arrival
    # floors back to the distance).
    # ------------------------------------------------------------------
    def _survey(self, b_max: int) -> tuple[int, int]:
        """One pass over the live sinks: count them and find the
        smallest winner hop count, priming the winner cache for the
        sweep that follows.  Returns ``(n_sinks, need)``.

        Stale cache entries are lower bounds (matches only remove
        candidates), so a stale winner that already needs at least as
        many hops as the running minimum cannot lower it — its race is
        left unresolved.  Sinks that might beat the minimum are
        recomputed, scalar below the broadcast cutoff.  Sink scan order
        is irrelevant here — ``need`` is a minimum and the cache primes
        identically either way (winner lookups have no side effects on
        the event state) — so the live set is walked directly.
        """
        if b_max < 0:
            return 0, 0
        cache = self._winner_cache
        mask_ints = self._mask_ints
        popped = self.popped
        hops_div = 1024 * self._radix
        cutoff = (1 << (b_max + 1)) - 1
        need = 1 << 30
        n_sinks = 0
        missing: list[tuple[int, int]] = []
        stale: list[tuple[int, int, int]] = []
        for idx in self._live:
            low = mask_ints[idx] & cutoff
            while low:
                lsb = low & -low
                low ^= lsb
                b = lsb.bit_length() - 1
                n_sinks += 1
                win = cache.get((idx, popped + b))
                if win is None:
                    missing.append((b, idx))
                    continue
                hops = win // hops_div >> 1
                if hops >= need or self._packed_still_valid(win, idx, b):
                    # Valid: a real hop count. Stale at >= need: a lower
                    # bound that cannot improve the minimum.
                    if hops < need:
                        need = hops
                else:
                    stale.append((hops, b, idx))
        if stale:
            # Cheapest lower bounds first, so later entries can be
            # skipped once the running minimum undercuts them.
            stale.sort()
            for hops, b, idx in stale:
                if hops >= need:
                    break
                win = self._winner_for(idx, b)
                cache[(idx, popped + b)] = win
                hops = win // hops_div >> 1
                if hops < need:
                    need = hops
        if missing:
            if len(missing) * len(self._live) < _BULK_CUTOFF:
                for b, idx in missing:
                    win = self._winner_for(idx, b)
                    cache[(idx, popped + b)] = win
                    hops = win // hops_div >> 1
                    if hops < need:
                        need = hops
            else:
                for win in self._winners_bulk(missing):
                    hops = win // hops_div >> 1
                    if hops < need:
                        need = hops
        return n_sinks, need

    def _winner_for(self, idx: int, b: int) -> int:
        """One sink's packed winner, by whichever of the scalar scan and
        the single-row gather is cheaper for the current live count."""
        if len(self._live) >= 12:
            return self._winner_one(idx, b)
        return self._winner_scalar(idx, b)

    def _winners_bulk(self, sinks: list[tuple[int, int]]) -> list[int]:
        """Packed race winners for many sinks in one backend pass.

        Dispatches the broadcast winner race (kernel-backend method
        ``winners_bulk``) — bit-equivalent to the scalar ``cand <
        best`` scan.  Winners are stored in the cache and returned in
        request order.
        """
        live = self._live_units()
        cache = self._winner_cache
        b_arr = np.fromiter((b for b, _ in sinks), np.int64, len(sinks))
        sink_arr = np.fromiter((idx for _, idx in sinks), np.int64, len(sinks))
        best = self._kernel.winners_bulk(
            self._masks, live, sink_arr, b_arr, self._geo
        ).tolist()
        popped = self.popped
        for (b, idx), win in zip(sinks, best):
            cache[(idx, popped + b)] = win
        return best

    def _winner_one(self, idx: int, b: int) -> int:
        """Packed race winner for one sink: a single gathered row of the
        pair-base table against the live Units (the broadcast pass
        without its fan-out machinery); scalar vertical and boundary."""
        radix = self._radix
        live = self._live_units()
        shifted = self._masks[live] >> np.uint64(b)
        lsb = shifted & (np.uint64(0) - shifted)
        depth_key = self._depth_lut.take(np.bitwise_count(lsb - _ONE))
        best = int((self._pair_base[idx, live] + depth_key).min())
        higher = self._mask_ints[idx] >> (b + 1)
        if higher:
            t = (higher & -higher).bit_length()
            cand = (t * 16 * 128 + t) * radix
            if cand < best:
                best = cand
        boundary = self._bpacked[idx]
        return boundary if boundary < best else best

    def _winner_scalar(self, idx: int, b: int) -> int:
        """Packed race winner for one sink via a scalar scan over live
        Units — the same total order the broadcast pass reduces."""
        radix = self._radix
        cols = self.lattice.cols
        mask_ints = self._mask_ints
        best = self._bpacked[idx]
        best_arr2 = best // (1024 * radix)  # doubled-arrival digit
        higher = mask_ints[idx] >> (b + 1)
        if higher:
            t = (higher & -higher).bit_length()
            cand = (t * 16 * 128 + t) * radix
            if cand < best:
                best = cand
                best_arr2 = 2 * t
        r, c = divmod(idx, cols)
        for a in self._live:
            if a == idx:
                continue
            rest = mask_ints[a] >> b
            if not rest:
                continue
            t_rel = (rest & -rest).bit_length() - 1
            r2, c2 = divmod(a, cols)
            arrival2 = 2 * (t_rel + abs(r2 - r) + abs(c2 - c))
            if arrival2 > best_arr2:
                continue
            if c2 > c:
                port = PRIORITY_EAST
            elif c2 < c:
                port = PRIORITY_WEST
            elif r2 < r:
                port = PRIORITY_NORTH
            else:
                port = PRIORITY_SOUTH
            cand = ((arrival2 * 8 + port) * 128 + t_rel) * radix + a + 1
            if cand < best:
                best = cand
                best_arr2 = arrival2
        return best

    def _packed_still_valid(self, packed: int, idx: int, b: int) -> bool:
        """A cached winner stays optimal as long as the exact event bit
        it races to is still present (boundary spikes always are)."""
        radix = self._radix
        src1 = packed % radix
        t_rel = packed // radix % 128
        if src1:
            unit = src1 - 1  # pair: the source Unit's event
        elif t_rel:
            unit = idx  # vertical: the sink's own later event
        else:
            return True  # boundary
        return bool((self._mask_ints[unit] >> (b + t_rel)) & 1)

    def _row_active(self, r: int) -> bool:
        """Row Master check: does any Unit in row ``r`` hold an event?"""
        return self._row_counts[r] > 0

    def _sweep_overhead(self, b_max: int) -> int:
        """Token-distribution cycles of one full sweep (no sink waits)."""
        cols = self.lattice.cols
        per_row = sum(cols if count else 1 for count in self._row_counts)
        return (b_max + 1) * per_row

    def _sweep(self, budget: int, b_max: int) -> Iterator[int]:
        """One real Controller sweep at hop ``budget``.

        Yields per-action cycle costs; generator-returns
        ``(matched, popped)``.  The shift check runs after every
        base-depth sub-sweep, as in Algorithm 1 (Controller lines
        18-22); a shift aborts the sweep so the Controller can restart
        with budget 1.

        Sinks at each base are gathered up front; each is re-checked
        against the live mask when the token reaches it, because an
        earlier match in the same sweep may have consumed it as a
        source (bits are only ever cleared, so the precomputed list is
        a superset of the true scan).  A sink whose cached winner went
        stale needs no recomputation when its stale hop count already
        exceeds the budget: the stale key is a lower bound, so the true
        winner times out just the same.

        MIRROR: :meth:`_sweep_sync` is this body minus the yields —
        any change here must be applied there too (the equivalence
        suite and golden pins police the lockstep).
        """
        matched = False
        lattice = self.lattice
        cols = lattice.cols
        mask_ints = self._mask_ints
        row_counts = self._row_counts
        cache = self._winner_cache
        popped = self.popped
        hops_div = 1024 * self._radix
        timeout_cost = 2 * budget + 2
        for b in range(b_max + 1):
            bit = 1 << b
            live = self._live
            if len(live) > 48:
                hits = np.flatnonzero(
                    (self._masks >> np.uint64(b)) & _ONE
                ).tolist()
            else:
                hits = sorted(a for a in live if mask_ints[a] & bit)
            n_hits = len(hits)
            pos = 0
            any_match_this_b = False
            for r in range(lattice.rows):
                row_end = (r + 1) * cols
                if not row_counts[r]:
                    while pos < n_hits and hits[pos] < row_end:
                        pos += 1
                    self.cycles += 1
                    yield 1
                    continue
                self.cycles += cols
                yield cols
                while pos < n_hits and hits[pos] < row_end:
                    idx = hits[pos]
                    pos += 1
                    if not mask_ints[idx] & bit:
                        continue  # consumed as a source earlier this sweep
                    win = cache.get((idx, popped + b))
                    if win is not None:
                        hops = win // hops_div >> 1
                        if hops > budget:
                            # Lower bound beyond the budget — timeout
                            # whether or not the entry is still valid.
                            self.cycles += timeout_cost
                            yield timeout_cost
                            continue
                        if not self._packed_still_valid(win, idx, b):
                            win = self._winner_for(idx, b)
                            cache[(idx, popped + b)] = win
                            hops = win // hops_div >> 1
                    else:
                        win = self._winner_for(idx, b)
                        cache[(idx, popped + b)] = win
                        hops = win // hops_div >> 1
                    if hops <= budget:
                        boundary = self._apply(win, idx, b)
                        matched = True
                        any_match_this_b = True
                        if boundary:
                            # Boundary Units send no "Finish": the
                            # Controller waits out the full timeout.
                            cost = timeout_cost
                        else:
                            cost = 2 * hops + 2
                        self.cycles += cost
                        yield cost
                    else:
                        self.cycles += timeout_cost
                        yield timeout_cost
            if any_match_this_b and self.m > 0 and not self._layer0_occupied():
                yield self._pop()
                return matched, True
        return matched, False

    def _sweep_sync(self, budget: int, b_max: int) -> tuple[bool, bool]:
        """:meth:`_sweep` without the generator: identical state
        evolution and cycle accounting, costs charged directly (used by
        :meth:`run_to_idle`, where no caller can interrupt mid-sweep).

        MIRROR: keep in lockstep with :meth:`_sweep` — any change to
        either body must be applied to both."""
        matched = False
        lattice = self.lattice
        cols = lattice.cols
        mask_ints = self._mask_ints
        row_counts = self._row_counts
        cache = self._winner_cache
        popped = self.popped
        hops_div = 1024 * self._radix
        timeout_cost = 2 * budget + 2
        cycles = 0
        for b in range(b_max + 1):
            bit = 1 << b
            live = self._live
            if len(live) > 48:
                hits = np.flatnonzero(
                    (self._masks >> np.uint64(b)) & _ONE
                ).tolist()
            else:
                hits = sorted(a for a in live if mask_ints[a] & bit)
            n_hits = len(hits)
            pos = 0
            any_match_this_b = False
            for r in range(lattice.rows):
                row_end = (r + 1) * cols
                if not row_counts[r]:
                    while pos < n_hits and hits[pos] < row_end:
                        pos += 1
                    cycles += 1
                    continue
                cycles += cols
                while pos < n_hits and hits[pos] < row_end:
                    idx = hits[pos]
                    pos += 1
                    if not mask_ints[idx] & bit:
                        continue  # consumed as a source earlier this sweep
                    win = cache.get((idx, popped + b))
                    if win is not None:
                        hops = win // hops_div >> 1
                        if hops > budget:
                            cycles += timeout_cost
                            continue
                        if not self._packed_still_valid(win, idx, b):
                            win = self._winner_for(idx, b)
                            cache[(idx, popped + b)] = win
                            hops = win // hops_div >> 1
                    else:
                        win = self._winner_for(idx, b)
                        cache[(idx, popped + b)] = win
                        hops = win // hops_div >> 1
                    if hops <= budget:
                        boundary = self._apply(win, idx, b)
                        matched = True
                        any_match_this_b = True
                        cycles += timeout_cost if boundary else 2 * hops + 2
                    else:
                        cycles += timeout_cost
            if any_match_this_b and self.m > 0 and not self._layer0_occupied():
                self.cycles += cycles
                self._pop()
                return matched, True
        self.cycles += cycles
        return matched, False

    def _apply(self, packed: int, idx: int, b: int) -> bool:
        """Commit a match from its packed winner key: clear the consumed
        events, record the Match.  Returns True for boundary matches
        (whose Controller wait differs).

        Matches are built through :func:`_fast_match`, skipping the
        dataclass ``__init__`` — the packed key guarantees a valid
        combination, and equality/hash read the fields directly.
        """
        radix = self._radix
        cols = self.lattice.cols
        src1 = packed % radix
        t_rel = packed // radix % 128
        self._clear_bit(idx, b)
        r, c = divmod(idx, cols)
        t_abs = self.popped + b
        if src1:
            r2, c2 = divmod(src1 - 1, cols)
            t2 = b + t_rel
            self._clear_bit(src1 - 1, t2)
            self.matches.append(
                _fast_match("pair", (r, c, t_abs), (r2, c2, self.popped + t2), None)
            )
            return False
        if t_rel:
            t2 = b + t_rel
            self._clear_bit(idx, t2)
            self.matches.append(
                _fast_match("pair", (r, c, t_abs), (r, c, self.popped + t2), None)
            )
            return False
        port = packed // (128 * radix) % 8
        side = BOUNDARY_WEST if port == PRIORITY_WEST else BOUNDARY_EAST
        self.matches.append(_fast_match("boundary", (r, c, t_abs), None, side))
        return True

    def _pop(self) -> int:
        """Shift every Reg down one layer; record per-layer cycles."""
        mask_ints = self._mask_ints
        cols = self.lattice.cols
        live = self._live
        dying = [a for a in live if mask_ints[a] == 1]
        for a in live:
            mask_ints[a] >>= 1
        for a in dying:
            live.discard(a)
            self._live_arr = None
            self._row_counts[a // cols] -= 1
        self._l0 = sum(1 for a in live if mask_ints[a] & 1)
        np.right_shift(self._masks, _ONE, out=self._masks)
        self.m -= 1
        self.popped += 1
        # The winner cache is keyed by *absolute* depth (popped + b), so
        # a shift needs no reindexing; entries for popped-away depths go
        # dead silently (never looked up).  They are purged once they
        # outnumber the plausibly-live entries, so push invalidation
        # scans stay proportional to the real working set and
        # long-running online sessions stay bounded.
        if len(self._winner_cache) > 4 * max(8, len(self._live)):
            cutoff = self.popped
            self._winner_cache = {
                k: v for k, v in self._winner_cache.items() if k[1] >= cutoff
            }
        # Shift detection scans the rows once, plus the shift itself.
        cost = self._charge(
            1 + sum(cols if count else 1 for count in self._row_counts)
        )
        self.layer_cycles.append(self.cycles - self._cycles_at_last_pop)
        self._cycles_at_last_pop = self.cycles
        return cost

    def _charge(self, cost: int) -> int:
        """Advance the busy-cycle clock and return the cost."""
        self.cycles += cost
        return cost
