"""Loop-form engine kernels: the numba backend's source of truth.

Every function here is written in the njit-compatible subset —
numpy scalars and arrays, explicit loops, no Python containers, no
cross-function calls (each kernel is self-contained so
``numba.njit`` compiles them independently and the uncompiled module
remains plain Python).  The ``python`` backend runs these functions
as-is, which is how their logic is bit-identity-tested on hosts
without numba; the ``numba`` backend wraps the very same functions in
``njit(cache=True)``.

Semantics are defined by the numpy backend
(:mod:`repro.core.kernels.numpy_backend`) and the scalar engine; the
equivalence suites in ``tests/`` pin all three to each other.

uint64 discipline: Reg masks can have bit 63 set (``MAX_LAYERS`` =
64), so every mask temporary stays ``np.uint64`` — mixing with int64
would promote to float64 under NEP 50 (numpy) or truncate (numba).
Packed race keys fit comfortably in int64 (< 2**62 for real
candidates).
"""

from __future__ import annotations

import numpy as np

#: Packed-key sentinel for "no candidate" (mirrors the engine's
#: ``_NO_CANDIDATE``; real candidate keys are far below it).
NO_CANDIDATE = 1 << 62

#: Survey minimum's starting value (mirrors the engine's ``1 << 30``).
NEED_INF = 1 << 30

_ONE = np.uint64(1)
_ZERO = np.uint64(0)


def race_kernel(masks, s, i, b, pair_base, depth_lut, bpacked, radix):
    """Packed race winners for ``(lane, sink, base)`` triples.

    Per triple: the best pair candidate over every event-holding unit
    (first event depth at/above the base = trailing zeros of the
    shifted mask), the sink's own vertical candidate, and its boundary
    key — minimum wins, identical total order to the broadcast race.
    """
    m = s.shape[0]
    n = masks.shape[1]
    out = np.empty(m, np.int64)
    for j in range(m):
        lane = s[j]
        sink = i[j]
        ub = np.uint64(b[j])
        best = bpacked[sink]
        for a in range(n):
            key = pair_base[sink, a]
            if key >= NO_CANDIDATE:
                continue
            w = masks[lane, a] >> ub
            if w == _ZERO:
                continue
            t = 0
            while w & _ONE == _ZERO:
                w = w >> _ONE
                t += 1
            cand = key + depth_lut[t]
            if cand < best:
                best = cand
        own = (masks[lane, sink] >> ub) >> _ONE
        if own != _ZERO:
            t = 1
            while own & _ONE == _ZERO:
                own = own >> _ONE
                t += 1
            cand = (t * 2048 + t) * radix
            if cand < best:
                best = cand
        out[j] = best
    return out


def valid_entries_kernel(entries, masks, s, i, b, radix):
    """Which cached winners still race to a live event bit."""
    m = entries.shape[0]
    out = np.zeros(m, np.bool_)
    for j in range(m):
        e = entries[j]
        if e < 0:
            continue
        src1 = e % radix
        t_rel = (e // radix) % 128
        if src1 > 0:
            tgt = src1 - 1
        elif t_rel > 0:
            tgt = i[j]
        else:
            out[j] = True  # boundary spikes are always available
            continue
        out[j] = (masks[s[j], tgt] >> np.uint64(b[j] + t_rel)) & _ONE != _ZERO
    return out


def survey_need_kernel(
    masks, win, win_dirty, s, i, b, pos, n_top,
    pair_base, depth_lut, bpacked, radix, hops_div,
):
    """Exact per-lane minimum winner hops over flattened sink triples.

    Valid entries contribute their hop count; missing entries are
    raced (and mark the lane's slab dirty); a stale entry is a lower
    bound (matches only remove candidates) and is re-raced only while
    its bound could still lower the lane's running minimum.  Which
    stale entries end up re-raced differs from the numpy backend's
    minimum-bound passes — cache contents are a performance detail —
    but the returned minimum is exact either way: every skipped stale
    bound was >= the running minimum, which only ever decreases.
    """
    need = np.full(n_top, NEED_INF, np.int64)
    m = s.shape[0]
    n = masks.shape[1]
    for j in range(m):
        lane = s[j]
        sink = i[j]
        base = b[j]
        p = pos[j]
        e = win[lane, sink, base]
        if e >= 0:
            h = (e // hops_div) >> 1
            src1 = e % radix
            t_rel = (e // radix) % 128
            if src1 > 0:
                valid = (
                    masks[lane, src1 - 1] >> np.uint64(base + t_rel)
                ) & _ONE != _ZERO
            elif t_rel > 0:
                valid = (
                    masks[lane, sink] >> np.uint64(base + t_rel)
                ) & _ONE != _ZERO
            else:
                valid = True
            if valid:
                if h < need[p]:
                    need[p] = h
                continue
            if h >= need[p]:
                continue  # stale lower bound cannot improve the minimum
        ub = np.uint64(base)
        best = bpacked[sink]
        for a in range(n):
            key = pair_base[sink, a]
            if key >= NO_CANDIDATE:
                continue
            w = masks[lane, a] >> ub
            if w == _ZERO:
                continue
            t = 0
            while w & _ONE == _ZERO:
                w = w >> _ONE
                t += 1
            cand = key + depth_lut[t]
            if cand < best:
                best = cand
        own = (masks[lane, sink] >> ub) >> _ONE
        if own != _ZERO:
            t = 1
            while own & _ONE == _ZERO:
                own = own >> _ONE
                t += 1
            cand = (t * 2048 + t) * radix
            if cand < best:
                best = cand
        win[lane, sink, base] = best
        if e < 0:
            win_dirty[lane] = True
        h = (best // hops_div) >> 1
        if h < need[p]:
            need[p] = h
    return need


def winners_bulk_kernel(masks, sinks, bases, pair_base, depth_lut, bpacked, radix):
    """The scalar engine's broadcast winner race, loop form.

    ``masks`` is the one Reg row (1-D); empty units fall out via the
    zero-mask skip, exactly like the sentinel depth key does in the
    broadcast pass.
    """
    m = sinks.shape[0]
    n = masks.shape[0]
    out = np.empty(m, np.int64)
    for j in range(m):
        sink = sinks[j]
        ub = np.uint64(bases[j])
        best = bpacked[sink]
        for a in range(n):
            key = pair_base[sink, a]
            if key >= NO_CANDIDATE:
                continue
            w = masks[a] >> ub
            if w == _ZERO:
                continue
            t = 0
            while w & _ONE == _ZERO:
                w = w >> _ONE
                t += 1
            cand = key + depth_lut[t]
            if cand < best:
                best = cand
        own = (masks[sink] >> ub) >> _ONE
        if own != _ZERO:
            t = 1
            while own & _ONE == _ZERO:
                own = own >> _ONE
                t += 1
            cand = (t * 2048 + t) * radix
            if cand < best:
                best = cand
        out[j] = best
    return out


def commit_scan_kernel(
    masks, win, row_counts, popped, cur, b, rel, units, entries, hops,
    matchable, budget, rowcost, pair_base, depth_lut, bpacked,
    radix, hops_div, rows, cols,
):
    """The commit-level conflict scan, loop form.

    Mirrors the numpy backend's sequential scan hit for hit: a hit
    consumed as an earlier match's source is skipped; a hit whose
    pre-raced winner lost its target re-races against the post-commit
    state (``pending`` bits masked out); boundary/pair records, the
    timeout-lump ``skips`` adjustment, late-row-clear recosting and
    per-lane charge totals come out as flat record arrays.  The only
    slab mutated is the winner cache.

    Returns ``(n_rec, n_g, n_fc, n_cl, rec_pos, rec_u, rec_t, rec_u2,
    rec_t2, rec_port, g_pos, g_total, g_l0, g_match, fc_pos, fc_row,
    clear_pos, clear_unit, clear_bits)`` — counts first, preallocated
    arrays trimmed by the caller.
    """
    n_all = rel.shape[0]
    n_units = masks.shape[1]
    radix128 = 128 * radix

    rec_pos = np.empty(n_all, np.int64)
    rec_u = np.empty(n_all, np.int64)
    rec_t = np.empty(n_all, np.int64)
    rec_u2 = np.empty(n_all, np.int64)
    rec_t2 = np.empty(n_all, np.int64)
    rec_port = np.empty(n_all, np.int64)
    n_groups = cur.shape[0]
    g_pos = np.empty(n_groups, np.int64)
    g_total = np.empty(n_groups, np.int64)
    g_l0 = np.empty(n_groups, np.int64)
    g_match = np.zeros(n_groups, np.bool_)
    cap2 = 2 * n_all + 2
    fc_pos = np.empty(cap2, np.int64)
    fc_row = np.empty(cap2, np.int64)
    fc_hit_row = np.empty(cap2, np.int64)
    clear_pos = np.empty(cap2, np.int64)
    clear_unit = np.empty(cap2, np.int64)
    clear_bits = np.empty(cap2, np.uint64)

    pending = np.zeros(n_units, np.uint64)
    ptouch = np.empty(cap2, np.int64)
    orig = np.zeros(n_units, np.uint64)
    orig_set = np.zeros(n_units, np.bool_)
    otouch = np.empty(cap2, np.int64)
    consumed = np.zeros(n_units * 64, np.bool_)
    ctouch = np.empty(cap2, np.int64)
    mset = np.zeros(n_units, np.bool_)
    cleared = np.zeros(n_units, np.bool_)
    row_scratch = np.empty(rows, np.int64)

    n_rec = 0
    n_g = 0
    n_fc = 0
    n_cl = 0
    lo = 0
    while lo < n_all:
        p = rel[lo]
        hi = lo
        while hi < n_all and rel[hi] == p:
            hi += 1
        lane = cur[p]
        bgt = budget[p]
        t_cost = 2 * bgt + 2
        pop_l = popped[lane]
        n_t = 0
        for k in range(lo, hi):
            if matchable[k]:
                mset[units[k]] = True
            else:
                n_t += 1
        cost = 0
        l0_dec = 0
        skips = 0
        any_m = False
        n_pt = 0
        n_ot = 0
        n_ct = 0
        fc_start = n_fc
        for k in range(lo, hi):
            if not matchable[k]:
                continue
            u = units[k]
            if consumed[(u << 6) | b]:
                continue  # consumed as a source earlier this level
            w = entries[k]
            h = hops[k]
            s1 = w % radix
            tr = (w // radix) % 128
            port = 0
            if s1 > 0:
                tu = s1 - 1
                td = b + tr
                bdy = False
            elif tr > 0:
                tu = u
                td = b + tr
                bdy = False
            else:
                tu = -1
                td = -1
                bdy = True
                port = (w // radix128) % 8
            if not orig_set[u]:
                orig_set[u] = True
                orig[u] = masks[lane, u]
                otouch[n_ot] = u
                n_ot += 1
            if not bdy:
                if consumed[(tu << 6) | td]:
                    # Pre-raced winner's target was consumed by an
                    # earlier commit: re-race against the post-commit
                    # state (pending clears masked out).
                    ub = np.uint64(b)
                    best = bpacked[u]
                    for a in range(n_units):
                        key = pair_base[u, a]
                        if key >= NO_CANDIDATE:
                            continue
                        wrd = (masks[lane, a] & ~pending[a]) >> ub
                        if wrd == _ZERO:
                            continue
                        t = 0
                        while wrd & _ONE == _ZERO:
                            wrd = wrd >> _ONE
                            t += 1
                        cand = key + depth_lut[t]
                        if cand < best:
                            best = cand
                    own = ((masks[lane, u] & ~pending[u]) >> ub) >> _ONE
                    if own != _ZERO:
                        t = 1
                        while own & _ONE == _ZERO:
                            own = own >> _ONE
                            t += 1
                        cand = (t * 2048 + t) * radix
                        if cand < best:
                            best = cand
                    w = best
                    win[lane, u, b] = w
                    h = (w // hops_div) >> 1
                    if h > bgt:
                        cost += t_cost
                        continue
                    s1 = w % radix
                    tr = (w // radix) % 128
                    if s1 > 0:
                        tu = s1 - 1
                        td = b + tr
                        bdy = False
                    elif tr > 0:
                        tu = u
                        td = b + tr
                        bdy = False
                    else:
                        bdy = True
                        port = (w // radix128) % 8
                if not bdy and not orig_set[tu]:
                    orig_set[tu] = True
                    orig[tu] = masks[lane, tu]
                    otouch[n_ot] = tu
                    n_ot += 1
            # Commit: clear the sink bit (and the source event).
            any_m = True
            if pending[u] == _ZERO:
                ptouch[n_pt] = u
                n_pt += 1
            pu = pending[u] | (_ONE << np.uint64(b))
            pending[u] = pu
            consumed[(u << 6) | b] = True
            ctouch[n_ct] = (u << 6) | b
            n_ct += 1
            if b == 0:
                l0_dec += 1
            r_hit = u // cols
            if (orig[u] & ~pu) == _ZERO and not cleared[u]:
                cleared[u] = True
                fc_pos[n_fc] = p
                fc_row[n_fc] = r_hit
                fc_hit_row[n_fc] = r_hit
                n_fc += 1
            if bdy:
                rec_pos[n_rec] = p
                rec_u[n_rec] = u
                rec_t[n_rec] = pop_l + b
                rec_u2[n_rec] = -1
                rec_t2[n_rec] = -1
                rec_port[n_rec] = port
                n_rec += 1
                cost += t_cost
                continue
            if pending[tu] == _ZERO:
                ptouch[n_pt] = tu
                n_pt += 1
            pt = pending[tu] | (_ONE << np.uint64(td))
            pending[tu] = pt
            consumed[(tu << 6) | td] = True
            ctouch[n_ct] = (tu << 6) | td
            n_ct += 1
            if td == b and tu > u and not mset[tu]:
                # A later timeout hit just lost its bit: the token will
                # skip it, so it leaves the timeout lump.
                skips += 1
            if td == 0:
                l0_dec += 1
            if (orig[tu] & ~pt) == _ZERO and not cleared[tu]:
                cleared[tu] = True
                fc_pos[n_fc] = p
                fc_row[n_fc] = tu // cols
                fc_hit_row[n_fc] = r_hit
                n_fc += 1
            rec_pos[n_rec] = p
            rec_u[n_rec] = u
            rec_t[n_rec] = pop_l + b
            rec_u2[n_rec] = tu
            rec_t2[n_rec] = pop_l + td
            rec_port[n_rec] = 0
            n_rec += 1
            cost += 2 * h + 2
        cost += (n_t - skips) * t_cost
        # Row-token charges: the static scan cost unless a commit
        # emptied a unit's row before the token reached it.
        n_late = 0
        for k in range(fc_start, n_fc):
            if fc_row[k] > fc_hit_row[k]:
                n_late += 1
        if n_late > 0:
            for rr in range(rows):
                row_scratch[rr] = row_counts[lane, rr]
            for k in range(fc_start, n_fc):
                if fc_row[k] > fc_hit_row[k]:
                    row_scratch[fc_row[k]] -= 1
            rtotal = 0
            for rr in range(rows):
                rtotal += cols if row_scratch[rr] > 0 else 1
            total = cost + rtotal
        else:
            total = cost + rowcost[p]
        g_pos[n_g] = p
        g_total[n_g] = total
        g_l0[n_g] = l0_dec
        g_match[n_g] = any_m
        n_g += 1
        for k in range(n_pt):
            u = ptouch[k]
            clear_pos[n_cl] = p
            clear_unit[n_cl] = u
            clear_bits[n_cl] = pending[u]
            n_cl += 1
            pending[u] = _ZERO
            cleared[u] = False
        for k in range(n_ot):
            orig_set[otouch[k]] = False
        for k in range(n_ct):
            consumed[ctouch[k]] = False
        for k in range(lo, hi):
            mset[units[k]] = False
        lo = hi
    return (
        n_rec, n_g, n_fc, n_cl,
        rec_pos, rec_u, rec_t, rec_u2, rec_t2, rec_port,
        g_pos, g_total, g_l0, g_match,
        fc_pos, fc_row, clear_pos, clear_unit, clear_bits,
    )


def exposed_any_kernel(masks, sel, exposed):
    """Per selected lane: any Reg bit set at the lane's exposed depth."""
    m = sel.shape[0]
    n = masks.shape[1]
    out = np.zeros(m, np.bool_)
    for j in range(m):
        lane = sel[j]
        ub = np.uint64(exposed[j])
        for a in range(n):
            if (masks[lane, a] >> ub) & _ONE != _ZERO:
                out[j] = True
                break
    return out


def charge_empty_kernel(cycles, popped, cycles_at_last_pop, lanes, cost):
    """Charge one absorbed empty layer per lane; returns deltas."""
    m = lanes.shape[0]
    deltas = np.empty(m, np.int64)
    for j in range(m):
        lane = lanes[j]
        cycles[lane] += cost
        popped[lane] += 1
        deltas[j] = cycles[lane] - cycles_at_last_pop[lane]
        cycles_at_last_pop[lane] = cycles[lane]
    return deltas
