"""Pluggable kernel backends for the engine hot loops.

The QECOOL engines dispatch their numeric hot kernels — the packed
winner races, cache-validity scans, the survey's stale-bound
refinement, the commit-level conflict scan, and the idle-layer charge
helpers — through a :class:`KernelBackend` selected by name at engine
construction.  The registry mirrors the noise-model registry
(:mod:`repro.surface_code.noise`): string-keyed factories, duplicate
registration rejected, unknown names listed in the error.

Built-in backends:

``numpy`` (default)
    The vectorized implementations the engines shipped with, moved out
    of the engine bodies verbatim.  Always available.

``python``
    The njit-compatible loop kernels of :mod:`.loops` run uncompiled.
    Slow — it exists so the compiled backend's *logic* is exercised by
    the bit-identity suites even on hosts without numba.

``numba``
    The same loop kernels compiled with ``numba.njit(cache=True)``.
    Import-guarded: when numba is missing the factory warns once per
    process and returns the numpy backend (sessions decode
    bit-identically either way — backends never change observables).

The bit-identity contract (tests/README.md) binds every backend: on
the same input stream, matches (objects and order), per-layer cycles,
overflow refusals and deadline suspension points are identical across
backends.  Winner-slab *contents* are a performance detail and may
differ (e.g. which stale survey entries get re-raced).
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import Callable, NamedTuple

import numpy as np

from repro.core.kernels.loops import NO_CANDIDATE  # noqa: F401

__all__ = [
    "CommitScan",
    "Geometry",
    "KernelBackend",
    "available_kernel_backends",
    "default_kernel_backend",
    "get_kernel_backend",
    "numba_version",
    "register_kernel_backend",
    "resolve_kernel_backend",
    "set_default_kernel_backend",
    "warm_up",
]

#: Environment variable naming the process-default backend.  Read once
#: at import so worker processes spawned by the experiment runner's
#: ``--jobs`` executor inherit the CLI's ``--kernel-backend`` choice.
KERNEL_BACKEND_ENV = "REPRO_KERNEL_BACKEND"


@dataclass(frozen=True)
class Geometry:
    """Per-lattice race-geometry tables handed to every kernel call.

    Built once per lattice by the engines (the tables themselves are
    lru-cached there); read-only.  ``bpacked_t`` is the boundary-key
    tuple for scalar lookups, ``bpacked`` the same keys as an int64
    vector for array passes.
    """

    pair_base: np.ndarray
    depth_lut: np.ndarray
    bpacked: np.ndarray
    bpacked_t: tuple
    radix: int
    hops_div: int
    rows: int
    cols: int


class CommitScan(NamedTuple):
    """Result of one commit-level conflict scan (see
    :meth:`KernelBackend.commit_scan`).  All observable mutations are
    returned as records for the engine to apply; the kernel itself
    writes only the winner slab (cache state, never observable).
    """

    rec_pos: np.ndarray    # position in `cur` of each match record
    rec_u: np.ndarray      # sink unit (flat index)
    rec_t: np.ndarray      # sink absolute depth
    rec_u2: np.ndarray     # source unit, -1 for boundary matches
    rec_t2: np.ndarray     # source absolute depth (boundary: unused)
    rec_port: np.ndarray   # boundary port code (pairs: unused)
    g_pos: np.ndarray      # one entry per scanned lane: position in `cur`
    g_total: np.ndarray    # ... total cycles charged at this level
    g_l0: np.ndarray       # ... layer-0 events consumed
    g_match: np.ndarray    # ... any match committed (bool)
    fc_pos: np.ndarray     # row-occupancy decrements: position in `cur`
    fc_row: np.ndarray     # ... emptied row index
    clear_pos: np.ndarray  # Reg bit clears: position in `cur`
    clear_unit: np.ndarray
    clear_bits: np.ndarray  # uint64 bit masks to clear


class KernelBackend:
    """One set of engine hot-kernel implementations.

    Every method is a pure function of the slab state it is handed
    (plus the winner slab, which backends may mutate freely — cache
    contents are never observable).  See the numpy backend for the
    reference semantics; all backends must be bit-identical on the
    observables.
    """

    #: Registry name (set per subclass).
    name: str = "?"
    #: True when the backend runs machine-compiled kernels.
    compiled: bool = False

    def race(self, masks, s, i, b, geo: Geometry) -> np.ndarray:
        """Packed race winners for ``(lane, sink, base)`` triples."""
        raise NotImplementedError

    def valid_entries(self, entries, masks, s, i, b, geo: Geometry) -> np.ndarray:
        """Which cached winners still race to a live event bit."""
        raise NotImplementedError

    def survey_need(
        self, masks, win, win_dirty, s, i, b, pos, n_top, geo: Geometry
    ) -> np.ndarray:
        """Exact per-lane minimum winner hops over the flattened sink
        triples, racing missing entries (marking ``win_dirty``) and
        refining stale lower bounds only while they could still lower
        the minimum.  Mutates the winner slab."""
        raise NotImplementedError

    def commit_scan(
        self, masks, win, row_counts, popped, cur, b, rel, units,
        entries, hops, matchable, budget, rowcost, geo: Geometry,
    ) -> CommitScan:
        """The commit-level conflict scan: resolve one base-depth
        sub-sweep's matchable hits per lane (consumed-hit skips,
        post-commit re-races, timeout-lump adjustment, late row
        clears), returning all observable mutations as records."""
        raise NotImplementedError

    def winners_bulk(self, masks, live, sinks, bases, geo: Geometry) -> np.ndarray:
        """The scalar engine's broadcast winner race: packed winners
        for many ``(sink, base)`` pairs against one Reg row."""
        raise NotImplementedError

    def exposed_any(self, masks, sel, exposed) -> np.ndarray:
        """Per selected lane: does any Reg hold an event at the lane's
        exposed depth (the ``try_push_empty`` decodability probe)."""
        raise NotImplementedError

    def charge_empty(self, cycles, popped, cycles_at_last_pop, lanes, cost):
        """Charge one absorbed empty layer per lane (mutates the three
        accounting slabs); returns the per-lane layer-cycle deltas."""
        raise NotImplementedError


_KERNEL_REGISTRY: dict[str, Callable[[], KernelBackend]] = {}
_instances: dict[str, KernelBackend] = {}
_warned_fallback: set[str] = set()


def register_kernel_backend(
    name: str, factory: Callable[[], KernelBackend]
) -> None:
    """Register a backend factory under ``name``.

    Raises ``ValueError`` on duplicate names — same contract as
    :func:`repro.surface_code.noise.register_noise`.
    """
    if name in _KERNEL_REGISTRY:
        raise ValueError(f"kernel backend {name!r} is already registered")
    _KERNEL_REGISTRY[name] = factory


def available_kernel_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_KERNEL_REGISTRY))


def get_kernel_backend(name: str) -> KernelBackend:
    """Resolve a backend by name (instances are shared per process).

    Unknown names raise ``ValueError`` listing the registered
    backends.  A registered backend whose imports are unavailable may
    return a substitute (the numba factory falls back to numpy with a
    one-time warning) — the returned object's ``name`` tells the truth.
    """
    try:
        factory = _KERNEL_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {name!r}; available:"
            f" {list(available_kernel_backends())}"
        ) from None
    backend = _instances.get(name)
    if backend is None:
        backend = factory()
        _instances[name] = backend
    return backend


_default_name: str | None = None


def default_kernel_backend() -> str:
    """The process-default backend name (``numpy`` unless overridden by
    :func:`set_default_kernel_backend` or ``REPRO_KERNEL_BACKEND``)."""
    if _default_name is not None:
        return _default_name
    return os.environ.get(KERNEL_BACKEND_ENV) or "numpy"


def set_default_kernel_backend(name: str) -> None:
    """Set the process-default backend (and export it to
    ``REPRO_KERNEL_BACKEND`` so forked/spawned worker processes
    inherit the choice).  The name must be registered."""
    get_kernel_backend(name)  # validate now, not at first engine
    global _default_name
    _default_name = name
    os.environ[KERNEL_BACKEND_ENV] = name


def resolve_kernel_backend(
    spec: str | KernelBackend | None,
) -> KernelBackend:
    """The engines' constructor hook: ``None`` means the process
    default; a string resolves through the registry; a backend
    instance passes through."""
    if spec is None:
        return get_kernel_backend(default_kernel_backend())
    if isinstance(spec, KernelBackend):
        return spec
    return get_kernel_backend(spec)


def numba_version() -> str | None:
    """The importable numba's version string, or ``None``."""
    try:
        import numba
    except ImportError:
        return None
    return numba.__version__


def _make_numpy() -> KernelBackend:
    from repro.core.kernels.numpy_backend import NumpyKernelBackend

    return NumpyKernelBackend()


def _make_python() -> KernelBackend:
    from repro.core.kernels.numba_backend import LoopKernelBackend

    return LoopKernelBackend()


def _make_numba() -> KernelBackend:
    try:
        from repro.core.kernels.numba_backend import NumbaKernelBackend

        return NumbaKernelBackend()
    except ImportError:
        # Once per process, not per engine: engine pools construct
        # engines continuously and the scheduler must not spam logs.
        # UserWarning (not RuntimeWarning): services run with
        # `-W error::RuntimeWarning` and a numba-less host serving a
        # numba-requesting spec is a degradation, not an error.
        if "numba" not in _warned_fallback:
            _warned_fallback.add("numba")
            warnings.warn(
                "kernel backend 'numba' requested but numba is not"
                " importable; falling back to the numpy backend"
                " (results are bit-identical, only slower)",
                UserWarning,
                stacklevel=3,
            )
        return get_kernel_backend("numpy")


register_kernel_backend("numpy", _make_numpy)
register_kernel_backend("python", _make_python)
register_kernel_backend("numba", _make_numba)


def warm_up(name: str) -> KernelBackend:
    """Exercise every dispatched kernel of ``name`` on a tiny decode.

    For the numba backend this triggers (and, with ``cache=True``,
    persists) the JIT compilation of every kernel, so CI can pay the
    compile cost once before timing anything.  Returns the backend.
    """
    backend = get_kernel_backend(name)
    from repro.core.engine import QecoolEngine
    from repro.core.engine_batch import QecoolEngineBatch
    from repro.surface_code.lattice import PlanarLattice

    lattice = PlanarLattice(3)
    n = lattice.n_ancillas
    layers = np.zeros((4, n), dtype=np.uint8)
    # A pair, a lone defect (boundary match) and an empty tail: drives
    # the race/survey/commit/timeout paths of both engines.
    layers[0, 0] = layers[0, 1] = 1
    layers[1, n - 1] = 1
    batch = QecoolEngineBatch(
        lattice, thv=-1, reg_size=7, capacity=2, kernel_backend=backend
    )
    lanes = np.asarray([batch.alloc_lane(), batch.alloc_lane()])
    for row in layers:
        batch.push_layers(lanes, np.broadcast_to(row, (2, n)))
    batch.begin_drain(lanes)
    batch.run_to_idle(lanes)
    scalar = QecoolEngine(
        lattice, thv=-1, reg_size=7, kernel_backend=backend
    )
    for row in layers:
        scalar.push_layer(row)
    scalar.run_to_idle()
    # The scalar broadcast race only dispatches above its bulk cutoff;
    # drive it directly so the compile is not workload-dependent.
    masks1 = np.zeros(n, dtype=np.uint64)
    masks1[0] = 3
    masks1[1] = 1
    backend.winners_bulk(
        masks1,
        np.asarray([0, 1], dtype=np.int64),
        np.asarray([0, 1], dtype=np.int64),
        np.zeros(2, dtype=np.int64),
        scalar._geo,
    )
    # Idle-layer fast paths (service admission kernels): thv=0 makes
    # the empty push probe the exposed-depth scan.
    idle_batch = QecoolEngineBatch(
        lattice, thv=0, reg_size=7, capacity=1, kernel_backend=backend
    )
    idle = np.asarray([idle_batch.alloc_lane()])
    idle_batch.empty_layers_fast(idle)
    idle_batch.try_push_empty(idle)
    return backend
