"""Loop-kernel backends: interpreted (``python``) and compiled (``numba``).

Both dispatch to the self-contained kernel functions of
:mod:`repro.core.kernels.loops`; the numba backend swaps in
``njit(cache=True)``-compiled versions of the very same functions.
Importing this module does **not** require numba — only constructing
:class:`NumbaKernelBackend` does (the registry factory import-guards
it and falls back to numpy with a one-time warning).
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels import CommitScan, Geometry, KernelBackend
from repro.core.kernels import loops

__all__ = ["LoopKernelBackend", "NumbaKernelBackend"]


class LoopKernelBackend(KernelBackend):
    """The njit-compatible loop kernels run uncompiled.

    Slow (plain-Python loops over numpy scalars) — registered so the
    compiled backend's kernel *logic* is exercised by the bit-identity
    suites on hosts without numba.
    """

    name = "python"
    compiled = False

    # Kernel function table; the numba subclass overrides these with
    # compiled dispatchers of the same functions.
    _race = staticmethod(loops.race_kernel)
    _valid = staticmethod(loops.valid_entries_kernel)
    _survey = staticmethod(loops.survey_need_kernel)
    _winners = staticmethod(loops.winners_bulk_kernel)
    _commit = staticmethod(loops.commit_scan_kernel)
    _exposed = staticmethod(loops.exposed_any_kernel)
    _charge = staticmethod(loops.charge_empty_kernel)

    def race(self, masks, s, i, b, geo: Geometry) -> np.ndarray:
        return self._race(
            masks, s, i, b,
            geo.pair_base, geo.depth_lut, geo.bpacked, geo.radix,
        )

    def valid_entries(self, entries, masks, s, i, b, geo: Geometry) -> np.ndarray:
        return self._valid(entries, masks, s, i, b, geo.radix)

    def survey_need(
        self, masks, win, win_dirty, s, i, b, pos, n_top, geo: Geometry
    ) -> np.ndarray:
        return self._survey(
            masks, win, win_dirty, s, i, b, pos, n_top,
            geo.pair_base, geo.depth_lut, geo.bpacked, geo.radix,
            geo.hops_div,
        )

    def winners_bulk(self, masks, live, sinks, bases, geo: Geometry) -> np.ndarray:
        # The loop form skips empty units as it scans, so the live set
        # needs no materialising.
        return self._winners(
            masks, sinks, bases,
            geo.pair_base, geo.depth_lut, geo.bpacked, geo.radix,
        )

    def commit_scan(
        self, masks, win, row_counts, popped, cur, b, rel, units,
        entries, hops, matchable, budget, rowcost, geo: Geometry,
    ) -> CommitScan:
        (
            n_rec, n_g, n_fc, n_cl,
            rec_pos, rec_u, rec_t, rec_u2, rec_t2, rec_port,
            g_pos, g_total, g_l0, g_match,
            fc_pos, fc_row, clear_pos, clear_unit, clear_bits,
        ) = self._commit(
            masks, win, row_counts, popped, cur, b, rel, units, entries,
            hops, matchable, budget, rowcost,
            geo.pair_base, geo.depth_lut, geo.bpacked,
            geo.radix, geo.hops_div, geo.rows, geo.cols,
        )
        return CommitScan(
            rec_pos[:n_rec], rec_u[:n_rec], rec_t[:n_rec],
            rec_u2[:n_rec], rec_t2[:n_rec], rec_port[:n_rec],
            g_pos[:n_g], g_total[:n_g], g_l0[:n_g], g_match[:n_g],
            fc_pos[:n_fc], fc_row[:n_fc],
            clear_pos[:n_cl], clear_unit[:n_cl], clear_bits[:n_cl],
        )

    def exposed_any(self, masks, sel, exposed) -> np.ndarray:
        return self._exposed(masks, sel, exposed)

    def charge_empty(self, cycles, popped, cycles_at_last_pop, lanes, cost):
        return self._charge(cycles, popped, cycles_at_last_pop, lanes, cost)


# Import-time failure here (no numba) is what the registry factory
# catches to fall back; keep it at module scope via the class body.
class NumbaKernelBackend(LoopKernelBackend):
    """The loop kernels compiled with ``numba.njit(cache=True)``.

    Compilation is lazy (first call per signature) and persisted to
    numba's on-disk cache, so a warmed CI cache pays the compile cost
    once.  ``nogil`` lets shard workers overlap kernel time.
    """

    name = "numba"
    compiled = True

    def __init__(self) -> None:
        import numba

        jit = numba.njit(cache=True, nogil=True)
        cls = type(self)
        if cls._race is loops.race_kernel:
            # Compile once per process, shared by every instance.
            cls._race = staticmethod(jit(loops.race_kernel))
            cls._valid = staticmethod(jit(loops.valid_entries_kernel))
            cls._survey = staticmethod(jit(loops.survey_need_kernel))
            cls._winners = staticmethod(jit(loops.winners_bulk_kernel))
            cls._commit = staticmethod(jit(loops.commit_scan_kernel))
            cls._exposed = staticmethod(jit(loops.exposed_any_kernel))
            cls._charge = staticmethod(jit(loops.charge_empty_kernel))
