"""The default kernel backend: the engines' vectorized hot loops.

This is the code the engines shipped with, moved out of
``engine_batch.py`` / ``engine.py`` bodies verbatim — it defines the
reference semantics every other backend is pinned to by the
equivalence suites.  Pure numpy, always available.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels import CommitScan, Geometry, KernelBackend
from repro.core.kernels.loops import NO_CANDIDATE

_ONE = np.uint64(1)

# Reg depth cap (mirrors the engine's MAX_LAYERS; kernels avoid the
# engine import to stay cycle-free).
_MAX_LAYERS = 64


class NumpyKernelBackend(KernelBackend):
    """Vectorized numpy implementations of the engine hot kernels."""

    name = "numpy"
    compiled = False

    def race(self, masks, s, i, b, geo: Geometry) -> np.ndarray:
        """Packed race winners for ``(lane, sink, base)`` triples in one
        broadcast pass (every requested sink holds its base bit, so the
        depth LUT's sentinel never compounds with the pair table's)."""
        # Sinks sharing a (lane, base) share the shifted-mask row and
        # its first-event depths; compute those once per unique pair.
        ukey, uidx = np.unique(
            s * np.int64(_MAX_LAYERS + 1) + b, return_inverse=True
        )
        us = ukey // (_MAX_LAYERS + 1)
        ub = ukey % (_MAX_LAYERS + 1)
        shifted = masks[us] >> ub.astype(np.uint64)[:, None]
        lsb = shifted & (np.uint64(0) - shifted)
        t = np.bitwise_count(lsb - _ONE).astype(np.intp)
        depth_keys = geo.depth_lut.take(t)
        best = (geo.pair_base[i] + depth_keys[uidx]).min(axis=1)
        # Two-step shift: b can reach 63 (a full uint64 Reg), where a
        # single shift by b + 1 would be undefined.
        own = (masks[s, i] >> b.astype(np.uint64)) >> _ONE
        own_lsb = own & (np.uint64(0) - own)
        vt = (np.bitwise_count(own_lsb - _ONE) + _ONE).astype(np.int64)
        vertical = np.where(
            own != 0, (vt * 2048 + vt) * geo.radix, NO_CANDIDATE
        )
        best = np.minimum(best, vertical)
        return np.minimum(best, geo.bpacked[i])

    def valid_entries(self, entries, masks, s, i, b, geo: Geometry) -> np.ndarray:
        """Which cached winners still race to a live event bit."""
        radix = geo.radix
        present = entries >= 0
        src1 = entries % radix
        t_rel = (entries // radix) % 128
        target = np.where(src1 > 0, src1 - 1, i)
        boundary = (src1 == 0) & (t_rel == 0)
        # Clip the shift for absent entries (whose decoded fields are
        # garbage); present entries always stay within the 64-bit Reg.
        shift = np.minimum(b + t_rel, 63).astype(np.uint64)
        tbit = (masks[s, target] >> shift) & _ONE
        return present & (boundary | (tbit == _ONE))

    def survey_need(
        self, masks, win, win_dirty, s, i, b, pos, n_top, geo: Geometry
    ) -> np.ndarray:
        """Exact per-lane minimum winner hops over the sink triples.

        Valid entries and missing races give a first minimum; a stale
        entry is a lower bound (matches only remove candidates), so
        only stale entries that could still beat the running minimum
        are re-raced — each pass races just the per-lane minimum
        bounds, which usually settles the minimum in one or two
        rounds.  The rest stay stale in the slab; the sweep handles
        them (timeout past the budget, validate when matchable).
        """
        hops_div = geo.hops_div
        need = np.full(n_top, 1 << 30, dtype=np.int64)
        entries = win[s, i, b]
        fresh = self.valid_entries(entries, masks, s, i, b, geo)
        hops = entries // hops_div >> 1
        np.minimum.at(need, pos[fresh], hops[fresh])
        missing = entries < 0
        if missing.any():
            raced = self.race(masks, s[missing], i[missing], b[missing], geo)
            win[s[missing], i[missing], b[missing]] = raced
            win_dirty[s[missing]] = True
            np.minimum.at(need, pos[missing], raced // hops_div >> 1)
        stale = ~fresh & ~missing
        bound_min = np.empty_like(need)
        while True:
            cand = stale & (hops < need[pos])
            if not cand.any():
                break
            bound_min[:] = 1 << 30
            np.minimum.at(bound_min, pos[cand], hops[cand])
            sel = cand & (hops == bound_min[pos])
            raced = self.race(masks, s[sel], i[sel], b[sel], geo)
            win[s[sel], i[sel], b[sel]] = raced
            np.minimum.at(need, pos[sel], raced // hops_div >> 1)
            stale[sel] = False
        return need

    def _race_one(
        self, masks, lane: int, idx: int, b: int, pending: dict[int, int],
        geo: Geometry,
    ) -> int:
        """One sink's packed winner against the lane's row with pending
        commit clears masked out (mid-level re-races see the true
        post-commit state)."""
        row = masks[lane]
        if pending:
            row = row.copy()
            for u, bits in pending.items():
                row[u] = row[u] & ~np.uint64(bits)
        shifted = row >> np.uint64(b)
        lsb = shifted & (np.uint64(0) - shifted)
        t = np.bitwise_count(lsb - _ONE).astype(np.intp)
        best = int((geo.pair_base[idx] + geo.depth_lut.take(t)).min())
        higher = int(row[idx]) >> (b + 1)
        if higher:
            vt = (higher & -higher).bit_length()
            cand = (vt * 2048 + vt) * geo.radix
            if cand < best:
                best = cand
        boundary = geo.bpacked_t[idx]
        return boundary if boundary < best else best

    def commit_scan(
        self, masks, win, row_counts, popped, cur, b, rel, units,
        entries, hops, matchable, budget, rowcost, geo: Geometry,
    ) -> CommitScan:
        """Resolve one base-depth sub-sweep per deadline-safe lane with
        matchable hits, without per-action Python.

        The races, validity checks and winner-field decodes arrive
        pre-vectorized; what remains sequential per lane is only the
        conflict structure — a hit consumed as an earlier match's
        source is skipped, a hit whose pre-raced winner lost its target
        event re-races against the post-commit state — which reduces to
        set lookups over plain ints.  Observable mutations come back as
        flat records; only the winner slab is written here.
        """
        cols = geo.cols
        radix = geo.radix
        radix128 = 128 * radix
        hops_div = geo.hops_div
        # Hits past the budget always time out (stale entries are lower
        # bounds): their charges are lumped per lane; only the
        # matchable hits need the sequential conflict scan.  Hit order
        # equals unit order, so "consumed before the token reached it"
        # is a plain unit-index comparison when adjusting the lump.
        n_timeout = np.bincount(rel[~matchable], minlength=len(cur))
        sel = matchable
        rel_m, units_m = rel[sel], units[sel]
        entries_m, hops_m = entries[sel], hops[sel]
        units_l = units_m.tolist()
        hops_l = hops_m.tolist()
        entries_l = entries_m.tolist()
        rel_l = rel_m.tolist()
        # Bulk-gather the masks the scan will consult — every matchable
        # hit's own unit and its pre-raced winner's target unit — when
        # the hit volume amortises the vector passes; tiny batches read
        # lazily per commit instead (re-raced targets always do).
        if rel_m.size >= 32:
            s_flat = cur[rel_m]
            src1_v = entries_m % radix
            tgt_v = np.where(src1_v > 0, src1_v - 1, units_m)
            mask_hit = masks[s_flat, units_m].tolist()
            mask_tgt = masks[s_flat, tgt_v].tolist()
            tgt_l = tgt_v.tolist()
        else:
            mask_hit = mask_tgt = tgt_l = None
        rec_pos: list[int] = []
        rec_u: list[int] = []
        rec_t: list[int] = []
        rec_u2: list[int] = []
        rec_t2: list[int] = []
        rec_port: list[int] = []
        g_pos: list[int] = []
        g_total: list[int] = []
        g_l0: list[int] = []
        g_match: list[bool] = []
        fc_pos: list[int] = []
        fc_row: list[int] = []
        clear_pos: list[int] = []
        clear_units: list[int] = []
        clear_bits: list[int] = []
        lo = 0
        n = len(rel_l)
        while lo < n:
            pos = rel_l[lo]
            hi = lo
            while hi < n and rel_l[hi] == pos:
                hi += 1
            lane = int(cur[pos])
            bgt = int(budget[pos])
            t_cost = 2 * bgt + 2
            pop_l = int(popped[lane])
            mset = set(units_l[lo:hi])
            pending: dict[int, int] = {}
            orig: dict[int, int] = {}
            # Consumed events as packed ints: unit << 6 | depth (depths
            # fit MAX_LAYERS = 64).
            consumed: set[int] = set()
            cleared_units: set[int] = set()
            full_clears: list[tuple[int, int]] = []  # (hit row, unit row)
            cost = 0
            l0_dec = 0
            skips = 0  # timeout hits consumed before the token's arrival
            any_m = False
            for idx in range(lo, hi):
                u = units_l[idx]
                if (u << 6) | b in consumed:
                    continue  # consumed as a source earlier this level
                w = entries_l[idx]
                h = hops_l[idx]
                s1 = w % radix
                tr = w // radix % 128
                if s1:
                    tu, td, boundary, port = s1 - 1, b + tr, False, 0
                elif tr:
                    tu, td, boundary, port = u, b + tr, False, 0
                else:
                    tu, td, boundary = -1, -1, True
                    port = w // radix128 % 8
                if u not in orig:
                    orig[u] = (
                        mask_hit[idx]
                        if mask_hit is not None
                        else int(masks[lane, u])
                    )
                if not boundary:
                    if (
                        mask_tgt is not None
                        and tu == tgt_l[idx]
                        and tu not in orig
                    ):
                        orig[tu] = mask_tgt[idx]
                    if (tu << 6) | td in consumed:
                        # The pre-raced winner's target was consumed by
                        # an earlier commit: re-race against the true
                        # post-commit state (what the token would see).
                        w = self._race_one(masks, lane, u, b, pending, geo)
                        win[lane, u, b] = w
                        h = w // hops_div >> 1
                        if h > bgt:
                            cost += t_cost
                            continue
                        s1 = w % radix
                        tr = w // radix % 128
                        if s1:
                            tu, td, boundary = s1 - 1, b + tr, False
                        elif tr:
                            tu, td, boundary = u, b + tr, False
                        else:
                            boundary = True
                            port = w // radix128 % 8
                    if not boundary and tu not in orig:
                        orig[tu] = int(masks[lane, tu])
                # Commit: clear the sink bit (and the source event).
                any_m = True
                pu = pending.get(u, 0) | (1 << b)
                pending[u] = pu
                consumed.add((u << 6) | b)
                if b == 0:
                    l0_dec += 1
                r_hit = u // cols
                if orig[u] & ~pu == 0 and u not in cleared_units:
                    cleared_units.add(u)
                    full_clears.append((r_hit, r_hit))
                if boundary:
                    rec_pos.append(pos)
                    rec_u.append(u)
                    rec_t.append(pop_l + b)
                    rec_u2.append(-1)
                    rec_t2.append(-1)
                    rec_port.append(port)
                    cost += t_cost
                    continue
                pt = pending.get(tu, 0) | (1 << td)
                pending[tu] = pt
                consumed.add((tu << 6) | td)
                if td == b and tu > u and tu not in mset:
                    # A later timeout hit just lost its bit: the token
                    # will skip it, so it leaves the timeout lump.
                    skips += 1
                if td == 0:
                    l0_dec += 1
                if orig[tu] & ~pt == 0 and tu not in cleared_units:
                    cleared_units.add(tu)
                    full_clears.append((r_hit, tu // cols))
                rec_pos.append(pos)
                rec_u.append(u)
                rec_t.append(pop_l + b)
                rec_u2.append(tu)
                rec_t2.append(pop_l + td)
                rec_port.append(0)
                cost += 2 * h + 2
            cost += (int(n_timeout[pos]) - skips) * t_cost
            # Row-token charges: the static scan cost unless a commit
            # emptied a unit's row before the token reached it.
            late = [rc for rh, rc in full_clears if rc > rh]
            if late:
                row_live = row_counts[lane].tolist()
                for rc in late:
                    row_live[rc] -= 1
                total = cost + sum(
                    cols if live > 0 else 1 for live in row_live
                )
            else:
                total = cost + int(rowcost[pos])
            g_pos.append(pos)
            g_total.append(total)
            g_l0.append(l0_dec)
            g_match.append(any_m)
            for rh, rc in full_clears:
                fc_pos.append(pos)
                fc_row.append(rc)
            for u, bits in pending.items():
                clear_pos.append(pos)
                clear_units.append(u)
                clear_bits.append(bits)
            lo = hi
        return CommitScan(
            np.asarray(rec_pos, dtype=np.int64),
            np.asarray(rec_u, dtype=np.int64),
            np.asarray(rec_t, dtype=np.int64),
            np.asarray(rec_u2, dtype=np.int64),
            np.asarray(rec_t2, dtype=np.int64),
            np.asarray(rec_port, dtype=np.int64),
            np.asarray(g_pos, dtype=np.int64),
            np.asarray(g_total, dtype=np.int64),
            np.asarray(g_l0, dtype=np.int64),
            np.asarray(g_match, dtype=bool),
            np.asarray(fc_pos, dtype=np.int64),
            np.asarray(fc_row, dtype=np.int64),
            np.asarray(clear_pos, dtype=np.int64),
            np.asarray(clear_units, dtype=np.int64),
            np.asarray(clear_bits, dtype=np.uint64),
        )

    def winners_bulk(self, masks, live, sinks, bases, geo: Geometry) -> np.ndarray:
        """The scalar engine's broadcast winner race: one
        (sinks x live) pass packing arrival keys into int64, reduced
        with one min, then raced against the packed vertical and
        boundary candidates — bit-equivalent to the scalar
        ``cand < best`` scan."""
        radix = geo.radix
        b_arr = bases.astype(np.uint64)
        shifted = masks[live][None, :] >> b_arr[:, None]
        lsb = shifted & (np.uint64(0) - shifted)
        # Lowest-set-bit index; 64 (out of range) where no event sits
        # at/above the base — which the depth LUT maps straight to the
        # no-candidate sentinel, so empty Units fall out of the race
        # (the sink itself always has t_rel == 0 at its own base, so
        # the sentinel diagonal never compounds with the LUT's).
        t_rel = np.bitwise_count(lsb - _ONE)
        depth_key = geo.depth_lut.take(t_rel)
        best_pair = (geo.pair_base[sinks][:, live] + depth_key).min(axis=1)
        own = masks[sinks] >> (b_arr + _ONE)
        own_lsb = own & (np.uint64(0) - own)
        v_t = np.bitwise_count(own_lsb - _ONE).astype(np.int64) + 1
        vertical = np.where(
            own != 0, (v_t * 16 * 128 + v_t) * radix, NO_CANDIDATE
        )
        best = np.minimum(best_pair, vertical)
        return np.minimum(best, geo.bpacked[sinks])

    def exposed_any(self, masks, sel, exposed) -> np.ndarray:
        """Any Reg bit at the exposed depth, per selected lane."""
        return (
            (masks[sel] >> exposed.astype(np.uint64)[:, None]) & _ONE
        ).any(axis=1)

    def charge_empty(self, cycles, popped, cycles_at_last_pop, lanes, cost):
        """Charge one absorbed empty layer per lane; returns deltas."""
        cycles[lanes] += cost
        popped[lanes] += 1
        deltas = cycles[lanes] - cycles_at_last_pop[lanes]
        cycles_at_last_pop[lanes] = cycles[lanes]
        return deltas
