"""Spike routing, arrival times and race-logic priority.

Algorithm 1's ``SPIKE`` procedure routes a spike vertically to the sink's
row (``currentRow``) and then horizontally toward the sink, steering off
each intermediate Unit's ``FlagToken`` (whether the token already passed
it this scan).  Because the token scan is row-major, the flags of all
Units jointly point at the token holder, so every spike converges on the
sink and its arrival time equals the 2-D Manhattan distance in unit hops.

In the sink's depth scan (``t = b .. Ndepth``), a source whose event sits
``dt`` layers above the base adds ``dt`` wait windows, so the race metric
is the full 3-D Manhattan distance — see DESIGN.md section 4.

The Prioritization module breaks simultaneous arrivals with race logic;
we fix the priority order deterministically as

    internal (vertical self-match)  >  North  >  East  >  South  >  West

and the Boundary Units answer with a half-cycle extra delay so that
normal Units win exact ties (the paper's footnote 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.surface_code.lattice import PlanarLattice

__all__ = [
    "BOUNDARY_DELAY",
    "PRIORITY_EAST",
    "PRIORITY_INTERNAL",
    "PRIORITY_NORTH",
    "PRIORITY_SOUTH",
    "PRIORITY_WEST",
    "SpikeCandidate",
    "boundary_candidate",
    "incoming_port",
    "pair_candidate",
    "vertical_candidate",
]

PRIORITY_INTERNAL = 0
PRIORITY_NORTH = 1
PRIORITY_EAST = 2
PRIORITY_SOUTH = 3
PRIORITY_WEST = 4

BOUNDARY_DELAY = 0.5
"""Extra (sub-cycle) delay of Boundary Unit spikes, for tie-breaking only."""


def incoming_port(sink: tuple[int, int], source: tuple[int, int]) -> int:
    """Priority rank of the port a spike from ``source`` arrives on.

    Routing is vertical-first, horizontal-last, so a source in a
    different column arrives horizontally (east/west port) and a source
    in the same column arrives vertically (north/south port).
    """
    (r, c), (r2, c2) = sink, source
    if (r, c) == (r2, c2):
        return PRIORITY_INTERNAL
    if c2 > c:
        return PRIORITY_EAST
    if c2 < c:
        return PRIORITY_WEST
    return PRIORITY_NORTH if r2 < r else PRIORITY_SOUTH


@dataclass(frozen=True)
class SpikeCandidate:
    """One spike the sink may receive, with its race key.

    ``arrival`` is the (possibly fractional, for boundary delay) race
    time; ``hops`` is the integer hop budget the Controller's timeout
    must allow for the match to complete.  ``key`` orders candidates the
    way the race logic does: earliest arrival first, then port priority,
    then shallower source depth, then row-major source order.
    """

    kind: str  # "pair" | "vertical" | "boundary"
    arrival: float
    hops: int
    port: int
    t_rel: int
    source: tuple[int, int] | None = None
    side: str | None = None

    @property
    def key(self) -> tuple[float, int, int, tuple[int, int]]:
        """Deterministic race-resolution sort key."""
        return (self.arrival, self.port, self.t_rel, self.source or (-1, -1))


def pair_candidate(
    lattice: PlanarLattice,
    sink: tuple[int, int],
    source: tuple[int, int],
    t_rel: int,
) -> SpikeCandidate:
    """Spike from another Unit whose first event at/above the base sits
    ``t_rel`` layers above it."""
    dist = lattice.manhattan(sink, source)
    arrival = t_rel + dist
    return SpikeCandidate(
        kind="pair",
        arrival=float(arrival),
        hops=arrival,
        port=incoming_port(sink, source),
        t_rel=t_rel,
        source=source,
    )


def vertical_candidate(t_rel: int) -> SpikeCandidate:
    """The sink's own later event ``t_rel`` layers above the base — a
    measurement-error self-match, detected in the depth scan with no
    spatial travel."""
    if t_rel <= 0:
        raise ValueError(f"vertical candidate needs t_rel >= 1, got {t_rel}")
    return SpikeCandidate(
        kind="vertical",
        arrival=float(t_rel),
        hops=t_rel,
        port=PRIORITY_INTERNAL,
        t_rel=t_rel,
        source=None,
    )


def boundary_candidate(lattice: PlanarLattice, sink: tuple[int, int]) -> SpikeCandidate:
    """Spike from the nearest Boundary Unit (ties go west, fixed)."""
    r, c = sink
    west = lattice.west_distance(c)
    east = lattice.east_distance(c)
    if west <= east:
        side, dist, port = "west", west, PRIORITY_WEST
    else:
        side, dist, port = "east", east, PRIORITY_EAST
    return SpikeCandidate(
        kind="boundary",
        arrival=dist + BOUNDARY_DELAY,
        hops=dist,
        port=port,
        t_rel=0,
        source=None,
        side=side,
    )
