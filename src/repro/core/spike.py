"""Spike routing, arrival times and race-logic priority.

Algorithm 1's ``SPIKE`` procedure routes a spike vertically to the sink's
row (``currentRow``) and then horizontally toward the sink, steering off
each intermediate Unit's ``FlagToken`` (whether the token already passed
it this scan).  Because the token scan is row-major, the flags of all
Units jointly point at the token holder, so every spike converges on the
sink and its arrival time equals the 2-D Manhattan distance in unit hops.

In the sink's depth scan (``t = b .. Ndepth``), a source whose event sits
``dt`` layers above the base adds ``dt`` wait windows, so the race metric
is the full 3-D Manhattan distance — see ``docs/DESIGN.md`` section 4.

The Prioritization module breaks simultaneous arrivals with race logic;
we fix the priority order deterministically as

    internal (vertical self-match)  >  North  >  East  >  South  >  West

and the Boundary Units answer with a half-cycle extra delay so that
normal Units win exact ties (the paper's footnote 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property, lru_cache

import numpy as np

from repro.surface_code.lattice import PlanarLattice

__all__ = [
    "BOUNDARY_DELAY",
    "PRIORITY_EAST",
    "PRIORITY_INTERNAL",
    "PRIORITY_NORTH",
    "PRIORITY_SOUTH",
    "PRIORITY_WEST",
    "SpikeCandidate",
    "boundary_candidate",
    "boundary_spikes",
    "incoming_port",
    "pair_candidate",
    "port_table",
    "vertical_candidate",
]

PRIORITY_INTERNAL = 0
PRIORITY_NORTH = 1
PRIORITY_EAST = 2
PRIORITY_SOUTH = 3
PRIORITY_WEST = 4

BOUNDARY_DELAY = 0.5
"""Extra (sub-cycle) delay of Boundary Unit spikes, for tie-breaking only."""


def incoming_port(sink: tuple[int, int], source: tuple[int, int]) -> int:
    """Priority rank of the port a spike from ``source`` arrives on.

    Routing is vertical-first, horizontal-last, so a source in a
    different column arrives horizontally (east/west port) and a source
    in the same column arrives vertically (north/south port).
    """
    (r, c), (r2, c2) = sink, source
    if (r, c) == (r2, c2):
        return PRIORITY_INTERNAL
    if c2 > c:
        return PRIORITY_EAST
    if c2 < c:
        return PRIORITY_WEST
    return PRIORITY_NORTH if r2 < r else PRIORITY_SOUTH


@dataclass(frozen=True)
class SpikeCandidate:
    """One spike the sink may receive, with its race key.

    ``arrival`` is the (possibly fractional, for boundary delay) race
    time; ``hops`` is the integer hop budget the Controller's timeout
    must allow for the match to complete.  ``key`` orders candidates the
    way the race logic does: earliest arrival first, then port priority,
    then shallower source depth, then row-major source order.
    """

    kind: str  # "pair" | "vertical" | "boundary"
    arrival: float
    hops: int
    port: int
    t_rel: int
    source: tuple[int, int] | None = None
    side: str | None = None

    @cached_property
    def key(self) -> tuple[float, int, int, tuple[int, int]]:
        """Deterministic race-resolution sort key (computed once; the
        dataclass is frozen, so the key can never go stale)."""
        return (self.arrival, self.port, self.t_rel, self.source or (-1, -1))


def pair_candidate(
    lattice: PlanarLattice,
    sink: tuple[int, int],
    source: tuple[int, int],
    t_rel: int,
) -> SpikeCandidate:
    """Spike from another Unit whose first event at/above the base sits
    ``t_rel`` layers above it."""
    dist = lattice.manhattan(sink, source)
    arrival = t_rel + dist
    return SpikeCandidate(
        kind="pair",
        arrival=float(arrival),
        hops=arrival,
        port=incoming_port(sink, source),
        t_rel=t_rel,
        source=source,
    )


@lru_cache(maxsize=None)
def vertical_candidate(t_rel: int) -> SpikeCandidate:
    """The sink's own later event ``t_rel`` layers above the base — a
    measurement-error self-match, detected in the depth scan with no
    spatial travel.

    Cached: the candidate depends on ``t_rel`` alone and the dataclass
    is frozen, so the engine's hot path shares one instance per depth.
    """
    if t_rel <= 0:
        raise ValueError(f"vertical candidate needs t_rel >= 1, got {t_rel}")
    return SpikeCandidate(
        kind="vertical",
        arrival=float(t_rel),
        hops=t_rel,
        port=PRIORITY_INTERNAL,
        t_rel=t_rel,
        source=None,
    )


def boundary_candidate(lattice: PlanarLattice, sink: tuple[int, int]) -> SpikeCandidate:
    """Spike from the nearest Boundary Unit (ties go west, fixed).

    Side and distance come from the lattice's cached boundary tables
    (:attr:`~repro.surface_code.lattice.PlanarLattice.boundary_hops` /
    ``boundary_is_west``).
    """
    idx = lattice.ancilla_index(*sink)
    dist = int(lattice.boundary_hops[idx])
    if lattice.boundary_is_west[idx]:
        side, port = "west", PRIORITY_WEST
    else:
        side, port = "east", PRIORITY_EAST
    return SpikeCandidate(
        kind="boundary",
        arrival=dist + BOUNDARY_DELAY,
        hops=dist,
        port=port,
        t_rel=0,
        source=None,
        side=side,
    )


# ---------------------------------------------------------------------------
# Per-lattice race tables (cached once, shared across engines and shots).
#
# ``PlanarLattice`` hashes by code distance, so the caches below are hit
# by every engine on every shot of a Monte-Carlo point — the tables are
# built exactly once per distance per process.
# ---------------------------------------------------------------------------


@lru_cache(maxsize=None)
def port_table(lattice: PlanarLattice) -> np.ndarray:
    """Arrival-port priorities for all sink/source ancilla pairs.

    ``port_table(lattice)[sink, source]`` is :func:`incoming_port` of the
    flat-indexed pair, shape ``(n_ancillas, n_ancillas)`` uint8 (the
    diagonal holds :data:`PRIORITY_INTERNAL`).  Read-only.
    """
    coords = lattice.ancilla_coords_array
    r, c = coords[:, 0].astype(np.int64), coords[:, 1].astype(np.int64)
    sink_r, src_r = r[:, None], r[None, :]
    sink_c, src_c = c[:, None], c[None, :]
    table = np.where(src_r < sink_r, PRIORITY_NORTH, PRIORITY_SOUTH)
    table = np.where(src_c < sink_c, PRIORITY_WEST, table)
    table = np.where(src_c > sink_c, PRIORITY_EAST, table)
    same = (src_r == sink_r) & (src_c == sink_c)
    table = np.where(same, PRIORITY_INTERNAL, table).astype(np.uint8)
    table.setflags(write=False)
    return table


@lru_cache(maxsize=None)
def boundary_spikes(lattice: PlanarLattice) -> tuple[SpikeCandidate, ...]:
    """The nearest-Boundary-Unit candidate of every ancilla, flat-indexed.

    ``boundary_spikes(lattice)[a] == boundary_candidate(lattice,
    ancilla_coords(a))`` — frozen dataclasses, safely shared.
    """
    return tuple(
        boundary_candidate(lattice, (r, c)) for (r, c) in lattice.all_ancillas()
    )
