"""Shot-major batched QECOOL engine: one state slab, lane-parallel sweeps.

:class:`QecoolEngineBatch` simulates many independent :class:`
~repro.core.engine.QecoolEngine` machines ("lanes") of one shape
``(lattice, thv, reg_size, nlimit)`` at once.  All Unit state lives in
shot-major slabs — ``(S, N)`` uint64 Reg masks, ``(S,)`` clock/layer
registers, ``(S, rows)`` row-occupancy counts, an ``(S, N, L)``
packed-key winner slab — and the Controller phases (shift-detection
pops, the sink survey, analytic budget growth, token sweeps) advance
**every live lane in lock-step** as whole-batch numpy passes, with
per-lane divergence handled by boolean lane masks: idle, retired and
deadline-suspended lanes simply drop out of the index vectors instead
of being looped over.

Bit-identity contract (see ``tests/README.md``): every lane reproduces
the scalar engine's observable stream exactly — matches (objects and
order), per-layer cycle accounting, total cycles, overflow refusals,
and, under a finite decoder clock, the exact action boundary where the
decode freezes at the interval deadline.  The contract is kept by three
rules:

- **Race keys are shared.**  Winner races use the scalar engine's
  packed-int64 keys and per-lattice geometry tables verbatim, evaluated
  in bulk over flattened ``(lane, sink, base)`` triples.
- **Charges are lumped only when provably safe.**  A sub-sweep whose
  hits all time out charges a closed-form lump (row tokens plus
  ``n_hits`` timeouts).  The lump is applied only when the lane cannot
  cross its deadline inside it *and* its wall clock is integer-valued
  (every supported operating point: cycle budgets like 2 GHz x 1 us are
  integer floats, so lumped float adds are exact).  Otherwise the lane
  takes the exact per-action walk.
- **Divergent lanes fall back to the exact walk.**  A lane whose
  sub-sweep can match (or cross its deadline, or carries a non-integer
  wall) is walked action by action by :meth:`_walk_level` — the scalar
  ``_sweep`` body operating on slab state — and a lane suspended
  mid-sweep resumes through :meth:`_resume_lane` with its frozen
  ``(budget, b_max, hits, position)`` cursor, exactly like the scalar
  generator would.

The winner slab mirrors the scalar engine's lazily-validated cache:
entries are raced on demand, validated at use by checking that the
event bit they race to still exists, evicted in bulk when a pushed
event would out-race them, and shifted (never reindexed) on pops.
Cache contents are a performance detail — never observable in matches
or cycle accounting — which is what lets the slab organisation differ
from the scalar dict while the decisions stay identical.

MIRROR: the Controller logic here must stay in lock-step with
``QecoolEngine.run`` / ``run_to_idle`` / ``_sweep`` / ``_sweep_sync``
(the equivalence suites and golden pins police it).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.engine import (
    MAX_LAYERS,
    _depth_key_table,
    _fast_match,
    _kernel_geometry,
    _pair_base_table,
    _packed_boundaries_arr,
    QecoolEngine,
)
from repro.core.kernels import resolve_kernel_backend
from repro.core.spike import PRIORITY_WEST, port_table
from repro.decoders.base import BOUNDARY_EAST, BOUNDARY_WEST
from repro.surface_code.lattice import PlanarLattice

__all__ = ["LANE_PARKED", "LANE_RETIRED", "LANE_SUSPENDED", "QecoolEngineBatch"]

_ONE = np.uint64(1)
_U64_MAX = np.uint64(0xFFFFFFFFFFFFFFFF)

LANE_PARKED = 0
"""Decode reached IDLE: nothing matchable or poppable until more layers."""

LANE_SUSPENDED = 1
"""Decode crossed the lane's deadline mid-stream; resumes next round."""

LANE_RETIRED = 2
"""Drain complete: every stored layer popped (the trial's decode ended)."""


class QecoolEngineBatch:
    """Lane-parallel QECOOL machines of one ``(lattice, thv, reg_size)``.

    Lanes are claimed with :meth:`alloc_lane` and returned with
    :meth:`free_lane`; a freed lane is reset and may be reused by a
    later admission (the decode service's lane allocator does exactly
    that).  All lanes share the engine shape; per-lane clocks and round
    budgets are the caller's business — :meth:`decode` takes per-lane
    wall/deadline vectors and charges them action by action.
    """

    def __init__(
        self,
        lattice: PlanarLattice,
        thv: int = -1,
        reg_size: int | None = None,
        nlimit: int | None = None,
        capacity: int = 8,
        kernel_backend=None,
    ):
        if thv < -1:
            raise ValueError(f"thv must be >= -1, got {thv}")
        if reg_size is not None and not 1 <= reg_size <= MAX_LAYERS:
            raise ValueError(
                f"reg_size must be in [1, {MAX_LAYERS}], got {reg_size}"
            )
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.lattice = lattice
        self.thv = thv
        self.reg_size = reg_size
        self._depth_hint = reg_size if reg_size is not None else lattice.d + 1
        self.nlimit = (
            nlimit
            if nlimit is not None
            else lattice.rows + lattice.cols + self._depth_hint + 2
        )
        self._stall_limit = self.nlimit + self._depth_hint + 4
        # Geometry tables, shared with the scalar engine's caches.
        self._dist = lattice.pairwise_manhattan
        self._ports = port_table(lattice)
        self._pair_base = _pair_base_table(lattice)
        self._depth_lut = _depth_key_table(lattice)
        self._bpacked = _packed_boundaries_arr(lattice)
        self._bpacked_list = self._bpacked.tolist()
        self._radix = lattice.n_ancillas + 1
        self._hops_div = 1024 * self._radix
        self._kernel = resolve_kernel_backend(kernel_backend)
        self._geo = _kernel_geometry(lattice)
        # Optional repro.obs.trace.Tracer; None (the default) keeps
        # decode() entirely untimed.
        self.tracer = None
        self.capacity = 0
        self._n_depths = min(MAX_LAYERS, self._depth_hint + 2)
        self._alloc_slabs(capacity)
        self._free: list[int] = list(range(capacity - 1, -1, -1))

    # ------------------------------------------------------------------
    # Slabs and lane lifecycle
    # ------------------------------------------------------------------
    def _alloc_slabs(self, capacity: int) -> None:
        lattice = self.lattice
        old = self.capacity
        n, rows, nd = lattice.n_ancillas, lattice.rows, self._n_depths

        def grow(name, shape, dtype, fill=0):
            fresh = np.full(shape, fill, dtype=dtype)
            if old:
                fresh[:old] = getattr(self, name)
            setattr(self, name, fresh)

        grow("_masks", (capacity, n), np.uint64)
        grow("_m", (capacity,), np.int64)
        grow("_popped", (capacity,), np.int64)
        grow("_cycles", (capacity,), np.int64)
        grow("_cycles_at_last_pop", (capacity,), np.int64)
        grow("_l0", (capacity,), np.int64)
        grow("_row_counts", (capacity, rows), np.int64)
        grow("_budget", (capacity,), np.int64, fill=1)
        grow("_drain", (capacity,), bool)
        grow("_parked", (capacity,), bool, fill=True)
        grow("_in_use", (capacity,), bool)
        grow("_stall", (capacity,), np.int64)
        grow("_win", (capacity, n, nd), np.int64, fill=-1)
        grow("_win_dirty", (capacity,), bool)
        grow("_wall_exact", (capacity,), bool)
        # Per-call scratch, full-capacity so lane ids index directly.
        self._wall_full = np.zeros(capacity, dtype=np.float64)
        self._deadline_full = np.zeros(capacity, dtype=np.float64)
        self._pos_scratch = np.zeros(capacity, dtype=np.int64)
        self._status_scratch = np.full(capacity, -1, dtype=np.int8)
        if old:
            matches, layer_cycles = self._matches, self._layer_cycles
        else:
            matches, layer_cycles = [], []
        self._matches: list[list] = matches + [
            [] for _ in range(capacity - old)
        ]
        self._layer_cycles: list[list[int]] = layer_cycles + [
            [] for _ in range(capacity - old)
        ]
        if old == 0:
            self._cursors: dict[int, tuple] = {}
        self.capacity = capacity

    def _grow_depths(self, need: int) -> None:
        """Widen the winner slab's depth axis (rare: deep unbounded Regs)."""
        nd = min(MAX_LAYERS, max(need, self._n_depths * 2))
        fresh = np.full(
            (self.capacity, self.lattice.n_ancillas, nd), -1, dtype=np.int64
        )
        fresh[:, :, : self._n_depths] = self._win
        self._win = fresh
        self._n_depths = nd

    def alloc_lane(self) -> int:
        """Claim a reset lane, growing the slabs when none are free.

        Free lanes are kept clean (`free_lane` resets; fresh slabs are
        zeroed), so claiming is just a pop.
        """
        if not self._free:
            old = self.capacity
            self._alloc_slabs(old * 2)
            self._free.extend(range(self.capacity - 1, old - 1, -1))
        lane = self._free.pop()
        self._in_use[lane] = True
        return lane

    def free_lane(self, lane: int) -> None:
        """Return a lane to the free list (its state is reset)."""
        if not self._in_use[lane]:
            raise ValueError(f"lane {lane} is not allocated")
        self._in_use[lane] = False
        self._reset_lane(lane)
        self._free.append(lane)

    def _reset_lane(self, lane: int) -> None:
        self._masks[lane] = 0
        self._m[lane] = 0
        self._popped[lane] = 0
        self._cycles[lane] = 0
        self._cycles_at_last_pop[lane] = 0
        self._l0[lane] = 0
        self._row_counts[lane] = 0
        self._budget[lane] = 1
        self._drain[lane] = False
        self._parked[lane] = True
        self._stall[lane] = 0
        self._wall_exact[lane] = False
        if self._win_dirty[lane]:
            self._win[lane] = -1
            self._win_dirty[lane] = False
        self._matches[lane] = []
        self._layer_cycles[lane] = []
        self._cursors.pop(lane, None)

    @property
    def n_free(self) -> int:
        """Lanes currently unallocated."""
        return len(self._free)

    # Per-lane observables (the scalar engine's public accounting).
    def matches_of(self, lane: int) -> list:
        """The lane's match list (live object; do not mutate)."""
        return self._matches[lane]

    def layer_cycles_of(self, lane: int) -> list[int]:
        """The lane's per-layer cycle counts (live object; do not mutate)."""
        return self._layer_cycles[lane]

    def match_counts(self, lanes: np.ndarray) -> np.ndarray:
        """Per-lane match-list lengths, aligned with ``lanes``.

        The streaming session layer compares these against its
        consumed-match slab after each decode to find the (rare) lanes
        that need a correction materialised — the only per-shot Python
        left on its running path.
        """
        matches = self._matches
        return np.fromiter(
            (len(matches[lane]) for lane in lanes.tolist()),
            np.int64, len(lanes),
        )

    def cycles_of(self, lane: int) -> int:
        """The lane's busy-cycle clock."""
        return int(self._cycles[lane])

    def m_of(self, lane: int) -> int:
        """Layers currently stored in the lane's Regs."""
        return int(self._m[lane])

    def is_parked(self, lane: int) -> bool:
        """True when the lane's Controller sits at a clean IDLE point."""
        return bool(self._parked[lane]) and lane not in self._cursors

    def is_empty_idle(self, lane: int) -> bool:
        """Eligible for the batched ``idle_layer_fast`` delta."""
        return (
            self.is_parked(lane)
            and self._m[lane] == 0
            and not self._drain[lane]
        )

    def set_wall_exact(self, lane: int, exact: bool) -> None:
        """Declare the lane's wall clock integer-valued (see module doc:
        gates the lumped float charging; non-integer clocks always take
        the exact per-action walk)."""
        self._wall_exact[lane] = exact

    # ------------------------------------------------------------------
    # Measurement interface (batched)
    # ------------------------------------------------------------------
    def push_layers(self, lanes: np.ndarray, events: np.ndarray) -> np.ndarray:
        """Store one detection-event layer per lane; returns the per-lane
        acceptance mask (``False`` = Reg overflow, layer not stored)."""
        lanes = np.asarray(lanes, dtype=np.int64)
        m = self._m[lanes]
        ok = (
            np.ones(len(lanes), dtype=bool)
            if self.reg_size is None
            else m < self.reg_size
        )
        sel = lanes[ok]
        if not sel.size:
            return ok
        m_sel = m[ok]
        if (m_sel >= MAX_LAYERS).any():
            raise ValueError(
                f"array engine stores at most {MAX_LAYERS} layers; pop or"
                " drain before pushing more"
            )
        ev = events[ok].astype(bool)
        any_event = ev.any(axis=1)
        if any_event.any() and self._win_dirty[sel].any():
            self._invalidate_push(sel, ev, m_sel)
        sub = self._masks[sel]
        was_zero = (sub == 0) & ev
        self._masks[sel] = sub | (
            ev.astype(np.uint64) << m_sel.astype(np.uint64)[:, None]
        )
        rows, cols = self.lattice.rows, self.lattice.cols
        self._row_counts[sel] += was_zero.reshape(-1, rows, cols).sum(axis=2)
        at_zero = m_sel == 0
        if at_zero.any():
            self._l0[sel[at_zero]] += ev[at_zero].sum(axis=1)
        self._m[sel] = m_sel + 1
        if int(self._m[sel].max()) > self._n_depths:
            self._grow_depths(int(self._m[sel].max()))
        return ok

    def _invalidate_push(
        self, lanes: np.ndarray, ev: np.ndarray, t_new: np.ndarray
    ) -> None:
        """Evict winner-slab entries a just-pushed event would out-race.

        The batched mirror of the scalar ``_invalidate_after_push``: one
        broadcast of (pushed events) x (cached entries), with per-lane
        event groups reduced by ``logical_or.reduceat``.  Over-eviction
        would merely force a re-race, but the comparison is exact, so
        the kept/dropped set matches the scalar cache entry for entry.
        """
        dirty = self._win_dirty[lanes]
        lanes, ev, t_new = lanes[dirty], ev[dirty], t_new[dirty]
        if not lanes.size:
            return
        ev_rel, ev_units = np.nonzero(ev)
        if not ev_rel.size:
            return
        # Present slab entries of the pushing lanes, as sparse triples —
        # the cache is sparse (one entry per raced sink), so the
        # (entries x pushed events) cross product is built per lane
        # instead of broadcasting over the whole (N, L) slab.
        win_sub = self._win[lanes]
        e_rel, e_i, e_b = np.nonzero(win_sub >= 0)
        if not e_rel.size:
            return
        radix = self._radix
        n_lanes = len(lanes)
        ev_counts = np.bincount(ev_rel, minlength=n_lanes)
        ev_starts = np.concatenate(([0], np.cumsum(ev_counts)[:-1]))
        reps = ev_counts[e_rel]  # events faced by each entry
        if not reps.any():
            return
        pair_entry = np.repeat(np.arange(len(e_rel)), reps)
        offsets = np.concatenate(([0], np.cumsum(reps)[:-1]))
        within = np.arange(len(pair_entry)) - np.repeat(offsets, reps)
        pair_event = ev_starts[e_rel[pair_entry]] + within
        i = e_i[pair_entry]
        j = ev_units[pair_event]
        t_rel = t_new[e_rel[pair_entry]] - e_b[pair_entry]
        cand = (
            (t_rel + self._dist[i, j]) * 16 + self._ports[i, j]
        ) * (128 * radix) + t_rel * radix + (j + 1)
        vert = (t_rel * 2048 + t_rel) * radix
        cand = np.where(i == j, vert, cand)
        beaten = cand < win_sub[e_rel[pair_entry], i, e_b[pair_entry]]
        if not beaten.any():
            return
        stale = np.unique(pair_entry[beaten])
        self._win[lanes[e_rel[stale]], e_i[stale], e_b[stale]] = -1

    def begin_drain(self, lanes: np.ndarray) -> None:
        """Lift the ``thv`` wait on the given lanes (end-of-trial flush)."""
        self._drain[np.asarray(lanes, dtype=np.int64)] = True

    def empty_layers_fast(self, lanes: np.ndarray) -> np.ndarray:
        """Batched :meth:`QecoolEngine.idle_layer_fast`: absorb one empty
        layer per empty, parked lane.  Returns the per-lane charged cost
        (the caller's wall clock still pays it)."""
        lanes = np.asarray(lanes, dtype=np.int64)
        if (
            self._m[lanes].any()
            or self._drain[lanes].any()
            or not self._parked[lanes].all()
        ):
            raise RuntimeError(
                "empty_layers_fast requires empty, parked, non-draining lanes"
            )
        cost = 1 + self.lattice.rows
        deltas = self._kernel.charge_empty(
            self._cycles, self._popped, self._cycles_at_last_pop, lanes, cost
        ).tolist()
        for lane, delta in zip(lanes.tolist(), deltas):
            self._layer_cycles[lane].append(delta)
        dirty = lanes[self._win_dirty[lanes]]
        if dirty.size:
            # Every cached entry is dead (no layers stored); clearing the
            # rows is the slab's form of the scalar cache purge.
            self._win[dirty] = -1
            self._win_dirty[dirty] = False
        return np.full(len(lanes), cost, dtype=np.int64)

    def try_push_empty(self, lanes: np.ndarray) -> np.ndarray:
        """Batched :meth:`QecoolEngine.try_push_empty_idle`.

        Returns int8 per lane: ``1`` absorbed (``m += 1``), ``0`` Reg
        overflow (layer not stored), ``-1`` the push would expose a
        decodable sink (or the lane drains) — take the simulated path.
        """
        lanes = np.asarray(lanes, dtype=np.int64)
        out = np.full(len(lanes), -1, dtype=np.int8)
        m = self._m[lanes]
        simulate = self._drain[lanes].copy()
        if self.reg_size is not None:
            full = ~simulate & (m >= self.reg_size)
            out[full] = 0
        else:
            full = np.zeros(len(lanes), dtype=bool)
        cand = ~simulate & ~full
        if (m[cand] >= MAX_LAYERS).any():
            raise ValueError(
                f"array engine stores at most {MAX_LAYERS} layers; pop or"
                " drain before pushing more"
            )
        if self.thv >= 0 and cand.any():
            exposed = m - self.thv
            check = cand & (exposed >= 0)
            if check.any():
                sel = lanes[check]
                hit = self._kernel.exposed_any(
                    self._masks, sel, exposed[check]
                )
                blocked = np.flatnonzero(check)[hit]
                cand[blocked] = False
                out[blocked] = -1
        absorb = lanes[cand]
        self._m[absorb] += 1
        out[cand] = 1
        return out

    # ------------------------------------------------------------------
    # The Controller (lock-step across lanes)
    # ------------------------------------------------------------------
    def decode(
        self,
        lanes: np.ndarray,
        wall: np.ndarray,
        deadline: np.ndarray,
    ) -> np.ndarray:
        """Advance every lane's Controller until it parks at IDLE,
        finishes its drain, or crosses its deadline.

        ``wall``/``deadline`` are per-lane decoder-cycle clocks aligned
        with ``lanes``; ``wall`` is updated in place with every charged
        action (``math.inf`` deadline = unconstrained, wall untouched —
        the ``run_to_idle`` path).  Returns :data:`LANE_PARKED` /
        :data:`LANE_SUSPENDED` / :data:`LANE_RETIRED` per lane.
        """
        tracer = self.tracer
        if tracer is None:
            return self._decode(lanes, wall, deadline)
        t = tracer.clock()
        try:
            return self._decode(lanes, wall, deadline)
        finally:
            tracer.add(
                "engine.batch_decode", t, tracer.clock() - t,
                tag=self._kernel.name,
            )

    def _decode(
        self,
        lanes: np.ndarray,
        wall: np.ndarray,
        deadline: np.ndarray,
    ) -> np.ndarray:
        lanes = np.asarray(lanes, dtype=np.int64)
        wf, df = self._wall_full, self._deadline_full
        wf[lanes] = wall
        df[lanes] = deadline
        status = self._status_scratch
        status[lanes] = -1
        self._parked[lanes] = False
        if self._cursors:
            top: list[int] = []
            for lane in lanes.tolist():
                if lane in self._cursors:
                    if self._resume_lane(lane, wf, df, status):
                        top.append(lane)
                else:
                    top.append(lane)
            top_arr = np.asarray(top, dtype=np.int64)
        else:
            top_arr = lanes
        self._top_loop(top_arr, wf, df, status)
        wall[:] = wf[lanes]
        return status[lanes]

    def run_to_idle(self, lanes: np.ndarray) -> np.ndarray:
        """Deadline-free decode (drain / unconstrained-clock path)."""
        lanes = np.asarray(lanes, dtype=np.int64)
        wall = np.zeros(len(lanes), dtype=np.float64)
        deadline = np.full(len(lanes), math.inf)
        return self.decode(lanes, wall, deadline)

    def _park(self, lanes: np.ndarray, status: np.ndarray) -> None:
        status[lanes] = LANE_PARKED
        self._budget[lanes] = 1
        self._parked[lanes] = True

    def _top_loop(
        self,
        top: np.ndarray,
        wf: np.ndarray,
        df: np.ndarray,
        status: np.ndarray,
    ) -> None:
        """The Controller while-loop for lanes at a clean iteration start.

        MIRROR of ``QecoolEngine.run`` / ``run_to_idle``: pops, the
        drain-return check, the survey, the analytic budget skip, one
        real sweep, the budget bump and the stall guard — each phase
        vectorized over the lanes still running it.
        """
        while top.size:
            progressed = np.zeros(self.capacity, dtype=bool)
            top = self._phase_pops(top, wf, df, status, progressed)
            if not top.size:
                break
            done = self._drain[top] & (self._m[top] == 0)
            if done.any():
                status[top[done]] = LANE_RETIRED
                top = top[~done]
                if not top.size:
                    break
            b_max, n_sinks, need = self._survey(top)
            idle = n_sinks == 0
            if idle.any():
                stalled = idle & self._drain[top] & (self._m[top] > 0)
                if stalled.any():
                    raise RuntimeError(
                        "drain stalled with no defects but layers left"
                    )
                self._park(top[idle], status)
                top, b_max, n_sinks, need = (
                    top[~idle], b_max[~idle], n_sinks[~idle], need[~idle]
                )
                if not top.size:
                    break
            top, b_max = self._phase_analytic(
                top, b_max, n_sinks, need, wf, df, status
            )
            if not top.size:
                break
            top = self._phase_sweep(top, b_max, wf, df, status, progressed)
            if top.size:
                prog = progressed[top]
                self._stall[top[prog]] = 0
                lag = top[~prog]
                self._stall[lag] += 1
                if (self._stall[lag] > self._stall_limit).any():
                    raise RuntimeError(
                        "QECOOL engine made no progress over a full budget"
                        " cycle — matching policy bug"
                    )

    # ------------------------------------------------------------------
    # Phase: shift-detection pops
    # ------------------------------------------------------------------
    def _phase_pops(
        self,
        top: np.ndarray,
        wf: np.ndarray,
        df: np.ndarray,
        status: np.ndarray,
        progressed: np.ndarray,
    ) -> np.ndarray:
        """Pop while the oldest layer is clear, every popping lane at
        once; one charged action (and deadline check) per pop."""
        while True:
            can = (self._m[top] > 0) & (self._l0[top] == 0)
            if not can.any():
                return top
            popping = top[can]
            costs = self._pop_lanes(popping)
            self._budget[popping] = 1
            progressed[popping] = True
            finite = df[popping] != math.inf
            if finite.any():
                charged = popping[finite]
                wf[charged] += costs[finite]
                crossed = charged[wf[charged] >= df[charged]]
                if crossed.size:
                    for lane in crossed.tolist():
                        self._cursors[lane] = ("top",)
                    status[crossed] = LANE_SUSPENDED
                    keep = np.ones(len(top), dtype=bool)
                    keep[np.isin(top, crossed)] = False
                    top = top[keep]

    def _pop_lanes(self, popping: np.ndarray) -> np.ndarray:
        """Shift every popping lane's Regs down one layer (the scalar
        ``_pop``, batched); returns the per-lane charged cost."""
        rows, cols = self.lattice.rows, self.lattice.cols
        sub = self._masks[popping]
        dying = sub == _ONE
        if dying.any():
            self._row_counts[popping] -= dying.reshape(-1, rows, cols).sum(
                axis=2
            )
        sub >>= _ONE
        self._masks[popping] = sub
        self._l0[popping] = (sub & _ONE).sum(axis=1).astype(np.int64)
        self._m[popping] -= 1
        self._popped[popping] += 1
        dirty = popping[self._win_dirty[popping]]
        if dirty.size:
            # A lane whose Regs just emptied has only dead cache entries
            # left: clear its row once and stop shifting it (the drain
            # tail pops many empty layers across every lane at once).
            emptied = ~(self._masks[dirty] != 0).any(axis=1)
            if emptied.any():
                cleared = dirty[emptied]
                self._win[cleared] = -1
                self._win_dirty[cleared] = False
                dirty = dirty[~emptied]
        if dirty.size:
            # Absolute-depth keys in the scalar cache need no reindex on
            # pops; the relative-depth slab shifts instead — same keys,
            # same survivors.
            win = self._win[dirty]
            win[:, :, :-1] = win[:, :, 1:]
            win[:, :, -1] = -1
            self._win[dirty] = win
        active = (self._row_counts[popping] > 0).sum(axis=1)
        cost = 1 + rows + (cols - 1) * active
        self._cycles[popping] += cost
        deltas = (
            self._cycles[popping] - self._cycles_at_last_pop[popping]
        ).tolist()
        for lane, delta in zip(popping.tolist(), deltas):
            self._layer_cycles[lane].append(delta)
        self._cycles_at_last_pop[popping] = self._cycles[popping]
        return cost

    # ------------------------------------------------------------------
    # Phase: survey (sink count and minimum winner hops)
    # ------------------------------------------------------------------
    def _survey(
        self, top: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Count decodable sinks and find each lane's minimum winner hop
        count, refreshing the winner slab for every live sink.

        The scalar survey's stale-entry shortcuts are pure work-savers
        (``need`` is the exact minimum either way); the batch version
        re-races every missing or invalidated sink entry in one bulk
        pass, which keeps the slab fresh for the sweep that follows.
        """
        m = self._m[top]
        if self.thv < 0:
            b_max = m - 1
        else:
            b_max = np.where(
                self._drain[top], m - 1, np.minimum(m - 1, m - self.thv - 1)
            )
        n_sinks = np.zeros(len(top), dtype=np.int64)
        has = b_max >= 0
        if not has.any():
            return b_max, n_sinks, np.zeros(len(top), dtype=np.int64)
        sel = np.flatnonzero(has)
        cutoff = _U64_MAX >> (np.uint64(63) - b_max[sel].astype(np.uint64))
        n_sinks[sel] = (
            np.bitwise_count(self._masks[top[sel]] & cutoff[:, None])
            .sum(axis=1)
            .astype(np.int64)
        )
        need = np.full(len(top), 1 << 30, dtype=np.int64)
        active = sel[n_sinks[sel] > 0]
        if not active.size:
            return b_max, n_sinks, need
        # Flatten every (lane, sink unit, base) triple.
        s_parts, i_parts, b_parts = [], [], []
        lanes_a = top[active]
        bmax_a = b_max[active]
        for b in range(int(bmax_a.max()) + 1):
            at = lanes_a[bmax_a >= b]
            rel, units = np.nonzero(
                (self._masks[at] >> np.uint64(b)) & _ONE
            )
            if rel.size:
                s_parts.append(at[rel])
                i_parts.append(units)
                b_parts.append(np.full(rel.size, b, dtype=np.int64))
        s = np.concatenate(s_parts)
        i = np.concatenate(i_parts).astype(np.int64)
        b = np.concatenate(b_parts)
        # Map lane ids back to positions in `top` without assuming order.
        pos_of = self._pos_scratch
        pos_of[top] = np.arange(len(top), dtype=np.int64)
        pos = pos_of[s]
        # Valid entries and missing races give a first minimum, and a
        # stale entry is a lower bound (matches only remove
        # candidates), so only stale entries that could still beat the
        # running minimum need re-racing — the backend refines them
        # until the exact minimum settles.  The rest stay stale in the
        # slab; the sweep handles them (timeout past the budget,
        # validate when matchable).
        need = self._kernel.survey_need(
            self._masks, self._win, self._win_dirty, s, i, b, pos,
            len(top), self._geo,
        )
        return b_max, n_sinks, need

    def _valid_entries(
        self, entries: np.ndarray, s: np.ndarray, i: np.ndarray, b: np.ndarray
    ) -> np.ndarray:
        """Which cached winners still race to a live event bit
        (kernel-backend dispatch)."""
        return self._kernel.valid_entries(
            entries, self._masks, s, i, b, self._geo
        )

    def _race(self, s: np.ndarray, i: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Packed race winners for ``(lane, sink, base)`` triples — the
        scalar broadcast race flattened across lanes, dispatched to the
        kernel backend (every requested sink holds its base bit, so the
        depth LUT's sentinel never compounds with the pair table's)."""
        return self._kernel.race(self._masks, s, i, b, self._geo)

    # ------------------------------------------------------------------
    # Phase: analytic budget growth
    # ------------------------------------------------------------------
    def _row_scan_cost(self, lanes: np.ndarray) -> np.ndarray:
        """One row scan's token cycles per lane (the per-depth term of
        the scalar ``_sweep_overhead``)."""
        rows, cols = self.lattice.rows, self.lattice.cols
        active = (self._row_counts[lanes] > 0).sum(axis=1)
        return rows + (cols - 1) * active

    def _phase_analytic(
        self,
        top: np.ndarray,
        b_max: np.ndarray,
        n_sinks: np.ndarray,
        need: np.ndarray,
        wf: np.ndarray,
        df: np.ndarray,
        status: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Account the provably-fruitless sweeps below ``need`` without
        simulating them: wall-clock-only charges, one per skipped budget
        level (lump-charged when the lane cannot cross its deadline
        inside the whole run and its wall arithmetic is exact)."""
        budget = self._budget[top]
        grow = need > budget
        if not grow.any():
            return top, b_max
        target = np.minimum(need, self.nlimit)
        unconstrained = df[top] == math.inf
        fast = grow & unconstrained
        self._budget[top[fast]] = target[fast]
        slow = grow & ~unconstrained
        if not slow.any():
            return top, b_max
        levels = target[slow] - budget[slow]
        overhead = (b_max[slow] + 1) * self._row_scan_cost(top[slow])
        # sum_{cl=budget}^{target-1} (overhead + n_sinks * (2 cl + 2))
        total = levels * overhead + n_sinks[slow] * (
            (budget[slow] + target[slow] - 1) * levels + 2 * levels
        )
        lanes_s = top[slow]
        lump_ok = self._wall_exact[lanes_s] & (
            wf[lanes_s] + total < df[lanes_s]
        )
        lumped = lanes_s[lump_ok]
        wf[lumped] += total[lump_ok]
        self._budget[lumped] = target[slow][lump_ok]
        slow_pos = np.flatnonzero(slow)
        drop: list[int] = []
        for j in np.flatnonzero(~lump_ok).tolist():
            pos = int(slow_pos[j])
            lane = int(top[pos])
            crossed = self._analytic_steps(
                lane, int(budget[pos]), int(target[pos]), int(n_sinks[pos]),
                int(overhead[j]), int(b_max[pos]), wf, df,
            )
            if crossed:
                status[lane] = LANE_SUSPENDED
                drop.append(lane)
        if drop:
            keep = ~np.isin(top, np.asarray(drop, dtype=np.int64))
            top, b_max = top[keep], b_max[keep]
        return top, b_max

    def _analytic_steps(
        self,
        lane: int,
        budget: int,
        target: int,
        n_sinks: int,
        overhead: int,
        b_max: int,
        wf: np.ndarray,
        df: np.ndarray,
    ) -> bool:
        """Per-level analytic charges for one deadline-threatened lane;
        freezes an ``("analytic", ...)`` cursor on crossing."""
        wall = float(wf[lane])
        deadline = float(df[lane])
        for cl in range(budget, target):
            wall += overhead + n_sinks * (2 * cl + 2)
            if wall >= deadline:
                wf[lane] = wall
                self._budget[lane] = target
                self._cursors[lane] = (
                    "analytic", cl + 1, target, n_sinks, overhead, b_max,
                )
                return True
        wf[lane] = wall
        self._budget[lane] = target
        return False

    # ------------------------------------------------------------------
    # Phase: one real sweep
    # ------------------------------------------------------------------
    def _phase_sweep(
        self,
        top: np.ndarray,
        b_max: np.ndarray,
        wf: np.ndarray,
        df: np.ndarray,
        status: np.ndarray,
        progressed: np.ndarray,
    ) -> np.ndarray:
        """One Controller sweep per lane, lock-stepped over base depths.

        At each depth, lanes whose hits all time out lump-charge the
        level (row tokens + timeouts, closed form); lanes that can match
        — or could cross their deadline, or carry non-exact walls — take
        the per-action walk.  The mid-sweep shift check runs after every
        depth, batched.
        """
        rows, cols = self.lattice.rows, self.lattice.cols
        cap = self.capacity
        bmax_full = np.zeros(cap, dtype=np.int64)
        bmax_full[top] = b_max
        level_match = np.zeros(cap, dtype=bool)  # any match at depth b
        survivors: list[int] = []
        cur = top
        b = 0
        max_b = int(b_max.max())
        while b <= max_b and cur.size:
            hitbits = (self._masks[cur] >> np.uint64(b)) & _ONE
            rel, units = np.nonzero(hitbits)
            if not rel.size:
                # No hits at this depth anywhere: every lane charges the
                # bare row scan (deadline-safety per the lump argument
                # below; an at-risk lane still needs the exact walk).
                rowcost = (
                    rows
                    + (cols - 1) * (self._row_counts[cur] > 0).sum(axis=1)
                )
                finite = df[cur] != math.inf
                at_risk = finite & (
                    ~self._wall_exact[cur] | (wf[cur] + rowcost >= df[cur])
                )
                easy = ~at_risk
                self._cycles[cur[easy]] += rowcost[easy]
                fin_easy = easy & finite
                wf[cur[fin_easy]] += rowcost[fin_easy]
                dropped = []
                for pos in np.flatnonzero(at_risk).tolist():
                    lane = int(cur[pos])
                    crossed, _ = self._walk_level(
                        lane, b, int(self._budget[lane]), [], 0, 0, False,
                        wf, df,
                    )
                    if crossed:
                        cursor = self._cursors[lane]
                        self._cursors[lane] = cursor + (
                            int(bmax_full[lane]), b, False,
                            bool(progressed[lane]),
                        )
                        status[lane] = LANE_SUSPENDED
                        dropped.append(lane)
                if dropped:
                    cur = cur[
                        ~np.isin(cur, np.asarray(dropped, dtype=np.int64))
                    ]
                done = bmax_full[cur] <= b
                if done.any():
                    finished = cur[done]
                    bump = self._budget[finished]
                    self._budget[finished] = np.where(
                        bump < self.nlimit, bump + 1, 1
                    )
                    survivors.extend(finished.tolist())
                    cur = cur[~done]
                b += 1
                continue
            budget = self._budget[cur]
            timeout_cost = 2 * budget + 2
            units = units.astype(np.int64)
            n_hits = np.bincount(rel, minlength=len(cur))
            has_match = np.zeros(len(cur), dtype=bool)
            entries = hops = matchable = None
            if rel.size:
                s_flat = cur[rel]
                entries = self._win[s_flat, units, b]
                missing = entries < 0
                if missing.any():
                    b_arr = np.full(int(missing.sum()), b, dtype=np.int64)
                    raced = self._race(s_flat[missing], units[missing], b_arr)
                    self._win[s_flat[missing], units[missing], b] = raced
                    self._win_dirty[s_flat[missing]] = True
                    entries = entries.copy()
                    entries[missing] = raced
                hops = entries // self._hops_div >> 1
                matchable = hops <= budget[rel]
                if matchable.any():
                    # The scalar machine validates (and re-races) only
                    # entries cheap enough to match; stale entries past
                    # the budget time out as lower bounds.
                    mi = np.flatnonzero(matchable)
                    b_arr = np.full(mi.size, b, dtype=np.int64)
                    valid = self._valid_entries(
                        entries[mi], s_flat[mi], units[mi], b_arr
                    )
                    if not valid.all():
                        ri = mi[~valid]
                        raced = self._race(
                            s_flat[ri], units[ri],
                            np.full(ri.size, b, dtype=np.int64),
                        )
                        self._win[s_flat[ri], units[ri], b] = raced
                        entries = entries.copy()
                        entries[ri] = raced
                        hops = entries // self._hops_div >> 1
                        matchable = hops <= budget[rel]
                    has_match = (
                        np.bincount(
                            rel[matchable], minlength=len(cur)
                        ) > 0
                    )
            rowcost = (
                rows + (cols - 1) * (self._row_counts[cur] > 0).sum(axis=1)
            )
            lump = rowcost + n_hits * timeout_cost
            finite = df[cur] != math.inf
            # `lump` bounds the level's true charge from above (matches
            # cost at most a timeout, skips nothing, cleared rows less),
            # so lanes strictly inside their deadline cannot cross.
            at_risk = finite & (
                ~self._wall_exact[cur] | (wf[cur] + lump >= df[cur])
            )
            easy = ~at_risk & ~has_match
            easy_lanes = cur[easy]
            self._cycles[easy_lanes] += lump[easy]
            fin_easy = easy & finite
            wf[cur[fin_easy]] += lump[fin_easy]
            level_match[cur] = False
            commit = ~at_risk & has_match
            if commit.any():
                commit_flat = commit[rel]
                self._commit_level(
                    cur, b, rel[commit_flat], units[commit_flat],
                    entries[commit_flat], hops[commit_flat],
                    matchable[commit_flat], budget, rowcost, wf, finite,
                    level_match, progressed,
                )
            dropped: list[int] = []
            if at_risk.any():
                hit_lists = self._split_hits(rel, units, len(cur))
                for pos in np.flatnonzero(at_risk).tolist():
                    lane = int(cur[pos])
                    crossed, am = self._walk_level(
                        lane, b, int(budget[pos]), hit_lists[pos],
                        0, 0, False, wf, df,
                    )
                    if am:
                        level_match[lane] = True
                        progressed[lane] = True
                    if crossed:
                        cursor = self._cursors[lane]
                        self._cursors[lane] = cursor + (
                            int(bmax_full[lane]), b, am, bool(progressed[lane]),
                        )
                        status[lane] = LANE_SUSPENDED
                        dropped.append(lane)
            if dropped:
                cur = cur[~np.isin(cur, np.asarray(dropped, dtype=np.int64))]
            # Mid-sweep shift check (Algorithm 1, Controller lines 18-22).
            pop_now = (
                level_match[cur] & (self._m[cur] > 0) & (self._l0[cur] == 0)
            )
            if pop_now.any():
                popping = cur[pop_now]
                costs = self._pop_lanes(popping)
                self._budget[popping] = 1
                progressed[popping] = True
                finite_p = df[popping] != math.inf
                charged = popping[finite_p]
                wf[charged] += costs[finite_p]
                crossed_p = charged[wf[charged] >= df[charged]]
                for lane in crossed_p.tolist():
                    self._cursors[lane] = ("top",)
                    status[lane] = LANE_SUSPENDED
                exited = popping[~np.isin(popping, crossed_p)]
                survivors.extend(exited.tolist())
                cur = cur[~pop_now]
            done = bmax_full[cur] <= b
            if done.any():
                finished = cur[done]
                bump = self._budget[finished]
                self._budget[finished] = np.where(
                    bump < self.nlimit, bump + 1, 1
                )
                survivors.extend(finished.tolist())
                cur = cur[~done]
            b += 1
        return np.asarray(sorted(survivors), dtype=np.int64)

    def _commit_level(
        self,
        cur: np.ndarray,
        b: int,
        rel: np.ndarray,
        units: np.ndarray,
        entries: np.ndarray,
        hops: np.ndarray,
        matchable: np.ndarray,
        budget: np.ndarray,
        rowcost: np.ndarray,
        wf: np.ndarray,
        finite: np.ndarray,
        level_match: np.ndarray,
        progressed: np.ndarray,
    ) -> None:
        """Resolve one base-depth sub-sweep for every deadline-safe lane
        with matchable hits, without per-action Python.

        The sequential conflict scan — a hit consumed as an earlier
        match's source is skipped, a hit whose pre-raced winner lost
        its target event re-races against the post-commit state — runs
        in the kernel backend, which returns every observable mutation
        as flat records; this wrapper materialises the match objects
        (in scan order, so per-lane match order is the scalar one) and
        applies charges, occupancy updates and Reg bit clears to the
        slabs in bulk.  Decisions and charges are exactly the scalar
        ``_sweep`` level's: the pre-race is valid while its target
        survives (candidates are only ever removed), and the charge
        total is order-independent because deadline-safe lanes have no
        mid-level observation points.
        """
        cols = self.lattice.cols
        res = self._kernel.commit_scan(
            self._masks, self._win, self._row_counts, self._popped,
            cur, b, rel, units, entries, hops, matchable, budget,
            rowcost, self._geo,
        )
        cur_l = cur.tolist()
        matches = self._matches
        for pos, u, t1, u2, t2, port in zip(
            res.rec_pos.tolist(), res.rec_u.tolist(), res.rec_t.tolist(),
            res.rec_u2.tolist(), res.rec_t2.tolist(),
            res.rec_port.tolist(),
        ):
            lane = cur_l[pos]
            r, c = divmod(u, cols)
            if u2 < 0:
                side = (
                    BOUNDARY_WEST if port == PRIORITY_WEST else BOUNDARY_EAST
                )
                matches[lane].append(
                    _fast_match("boundary", (r, c, t1), None, side)
                )
            else:
                matches[lane].append(
                    _fast_match(
                        "pair", (r, c, t1), (u2 // cols, u2 % cols, t2), None
                    )
                )
        for pos, total, l0_dec, any_m in zip(
            res.g_pos.tolist(), res.g_total.tolist(), res.g_l0.tolist(),
            res.g_match.tolist(),
        ):
            lane = cur_l[pos]
            self._cycles[lane] += total
            if finite[pos]:
                wf[lane] += total
            if l0_dec:
                self._l0[lane] -= l0_dec
            if any_m:
                level_match[lane] = True
                progressed[lane] = True
        for pos, rc in zip(res.fc_pos.tolist(), res.fc_row.tolist()):
            self._row_counts[cur_l[pos], rc] -= 1
        if len(res.clear_pos):
            la = cur[res.clear_pos]
            self._masks[la, res.clear_unit] &= ~res.clear_bits

    @staticmethod
    def _split_hits(
        rel: np.ndarray, units: np.ndarray, n: int
    ) -> list[list[int]]:
        """Group the flat (lane-position, unit) hit pairs into per-lane
        ascending unit lists (``np.nonzero`` order is already sorted)."""
        lists: list[list[int]] = [[] for _ in range(n)]
        if rel.size:
            counts = np.bincount(rel, minlength=n)
            for pos, chunk in enumerate(
                np.split(units, np.cumsum(counts)[:-1])
            ):
                lists[pos] = chunk.tolist()
        return lists

    # ------------------------------------------------------------------
    # The exact per-lane walk (scalar ``_sweep`` body on slab state)
    # ------------------------------------------------------------------
    def _walk_level(
        self,
        lane: int,
        b: int,
        budget: int,
        hits: list[int],
        r0: int,
        pos0: int,
        row_charged: bool,
        wf: np.ndarray,
        df: np.ndarray,
    ) -> tuple[bool, bool]:
        """Walk one base-depth sub-sweep for one lane, action by action.

        MIRROR of the ``for r in range(lattice.rows)`` body of the
        scalar ``_sweep``: row-token charges, per-hit races (winner slab
        consulted, validated, re-raced on conflict), match application,
        timeout charges — each followed by the caller-side deadline
        check.  On crossing, freezes a ``("sweep", ...)`` cursor prefix
        (the caller appends sweep-level context) and returns
        ``crossed=True``.  Returns ``(crossed, any_match_this_b)``.
        """
        lattice = self.lattice
        rows, cols = lattice.rows, lattice.cols
        masks = self._masks
        row_counts = self._row_counts[lane]
        win_row = self._win[lane]
        radix = self._radix
        hops_div = self._hops_div
        timeout_cost = 2 * budget + 2
        wall = float(wf[lane])
        deadline = float(df[lane])
        unconstrained = deadline == math.inf
        cycles = 0
        n_hits = len(hits)
        pos = pos0
        any_match = False
        bit = np.uint64(1 << b)

        def suspend(r: int, pos: int, charged: bool) -> tuple[bool, bool]:
            self._cycles[lane] += cycles
            wf[lane] = wall
            self._cursors[lane] = ("sweep", budget, hits, r, pos, charged)
            return True, any_match

        for r in range(r0, rows):
            row_end = (r + 1) * cols
            if row_charged and r == r0:
                # Resuming mid-row: the token is already here (and a
                # pre-suspension match may have emptied the row since —
                # the scalar generator does not recheck either).
                pass
            elif not row_counts[r]:
                while pos < n_hits and hits[pos] < row_end:
                    pos += 1
                cycles += 1
                if not unconstrained:
                    wall += 1
                    if wall >= deadline:
                        return suspend(r + 1, pos, False)
                continue
            else:
                cycles += cols
                if not unconstrained:
                    wall += cols
                    if wall >= deadline:
                        return suspend(r, pos, True)
            while pos < n_hits and hits[pos] < row_end:
                idx = hits[pos]
                pos += 1
                if not masks[lane, idx] & bit:
                    continue  # consumed as a source earlier this sweep
                win = int(win_row[idx, b])
                if win >= 0:
                    hops = win // hops_div >> 1
                    if hops > budget:
                        # Lower bound beyond the budget — timeout whether
                        # or not the entry is still valid.
                        cycles += timeout_cost
                        if not unconstrained:
                            wall += timeout_cost
                            if wall >= deadline:
                                return suspend(r, pos, True)
                        continue
                    if not self._still_valid_one(lane, idx, b, win):
                        win = self._race_one(lane, idx, b)
                        win_row[idx, b] = win
                        hops = win // hops_div >> 1
                else:
                    win = self._race_one(lane, idx, b)
                    win_row[idx, b] = win
                    self._win_dirty[lane] = True
                    hops = win // hops_div >> 1
                if hops <= budget:
                    boundary = self._apply_one(lane, idx, b, win)
                    any_match = True
                    cost = timeout_cost if boundary else 2 * hops + 2
                else:
                    cost = timeout_cost
                cycles += cost
                if not unconstrained:
                    wall += cost
                    if wall >= deadline:
                        return suspend(r, pos, True)
        self._cycles[lane] += cycles
        wf[lane] = wall
        return False, any_match

    def _still_valid_one(self, lane: int, idx: int, b: int, packed: int) -> bool:
        """Scalar ``_packed_still_valid`` against the lane's slab row."""
        radix = self._radix
        src1 = packed % radix
        t_rel = packed // radix % 128
        if src1:
            unit = src1 - 1
        elif t_rel:
            unit = idx
        else:
            return True
        return bool((int(self._masks[lane, unit]) >> (b + t_rel)) & 1)

    def _race_one(
        self, lane: int, idx: int, b: int, pending: dict[int, int] | None = None
    ) -> int:
        """One sink's packed winner (the broadcast race on one slab row).

        ``pending`` maps units to bits cleared by commits not yet
        applied to the slab (mid-level re-races see the true state).
        """
        masks = self._masks[lane]
        if pending:
            masks = masks.copy()
            for u, bits in pending.items():
                masks[u] = masks[u] & ~np.uint64(bits)
        shifted = masks >> np.uint64(b)
        lsb = shifted & (np.uint64(0) - shifted)
        t = np.bitwise_count(lsb - _ONE).astype(np.intp)
        best = int((self._pair_base[idx] + self._depth_lut.take(t)).min())
        higher = int(masks[idx]) >> (b + 1)
        if higher:
            vt = (higher & -higher).bit_length()
            cand = (vt * 2048 + vt) * self._radix
            if cand < best:
                best = cand
        boundary = self._bpacked_list[idx]
        return boundary if boundary < best else best

    def _apply_one(self, lane: int, idx: int, b: int, packed: int) -> bool:
        """Commit one match (the scalar ``_apply`` on slab state)."""
        radix = self._radix
        cols = self.lattice.cols
        src1 = packed % radix
        t_rel = packed // radix % 128
        self._clear_bit_one(lane, idx, b)
        r, c = divmod(idx, cols)
        popped = int(self._popped[lane])
        t_abs = popped + b
        if src1:
            r2, c2 = divmod(src1 - 1, cols)
            t2 = b + t_rel
            self._clear_bit_one(lane, src1 - 1, t2)
            self._matches[lane].append(
                _fast_match("pair", (r, c, t_abs), (r2, c2, popped + t2), None)
            )
            return False
        if t_rel:
            t2 = b + t_rel
            self._clear_bit_one(lane, idx, t2)
            self._matches[lane].append(
                _fast_match("pair", (r, c, t_abs), (r, c, popped + t2), None)
            )
            return False
        port = packed // (128 * radix) % 8
        side = BOUNDARY_WEST if port == PRIORITY_WEST else BOUNDARY_EAST
        self._matches[lane].append(
            _fast_match("boundary", (r, c, t_abs), None, side)
        )
        return True

    def _clear_bit_one(self, lane: int, idx: int, t: int) -> None:
        new = int(self._masks[lane, idx]) & ~(1 << t)
        self._masks[lane, idx] = np.uint64(new)
        if t == 0:
            self._l0[lane] -= 1
        if not new:
            self._row_counts[lane, idx // self.lattice.cols] -= 1

    # ------------------------------------------------------------------
    # Mid-decode resumption
    # ------------------------------------------------------------------
    def _resume_lane(
        self, lane: int, wf: np.ndarray, df: np.ndarray, status: np.ndarray
    ) -> bool:
        """Continue a deadline-suspended lane from its frozen cursor.

        Returns True when the lane reached a clean Controller-top point
        and should join the lock-step loop; False when it suspended
        again (or its status was otherwise settled) this round.
        """
        cursor = self._cursors.pop(lane)
        kind = cursor[0]
        if kind == "top":
            return True
        if kind == "analytic":
            _, cl_next, target, n_sinks, overhead, b_max = cursor
            wall = float(wf[lane])
            deadline = float(df[lane])
            crossed = False
            for cl in range(cl_next, target):
                wall += overhead + n_sinks * (2 * cl + 2)
                if wall >= deadline:
                    self._cursors[lane] = (
                        "analytic", cl + 1, target, n_sinks, overhead, b_max,
                    )
                    crossed = True
                    break
            wf[lane] = wall
            self._budget[lane] = target
            if crossed:
                status[lane] = LANE_SUSPENDED
                return False
            return self._walk_sweep(
                lane, b_max, 0, None, 0, 0, False, False, False,
                wf, df, status,
            )
        # kind == "sweep": (tag, budget, hits, r, pos, charged,
        #                   b_max, b, any_match, matched)
        _, budget, hits, r, pos, charged, b_max, b, any_match, matched = cursor
        return self._walk_sweep(
            lane, b_max, b, hits, r, pos, charged, any_match, matched,
            wf, df, status,
        )

    def _walk_sweep(
        self,
        lane: int,
        b_max: int,
        b: int,
        hits: list[int] | None,
        r: int,
        pos: int,
        charged: bool,
        any_match: bool,
        matched: bool,
        wf: np.ndarray,
        df: np.ndarray,
        status: np.ndarray,
    ) -> bool:
        """Finish one lane's suspended sweep action by action, then hand
        it back to the lock-step loop at the Controller top."""
        lane_arr = np.asarray([lane], dtype=np.int64)
        progressed = matched
        while b <= b_max:
            if hits is None:
                row = self._masks[lane]
                hits = np.flatnonzero(
                    (row >> np.uint64(b)) & _ONE
                ).tolist()
                level_match = False
            else:
                level_match = any_match
            budget = int(self._budget[lane])
            crossed, am = self._walk_level(
                lane, b, budget, hits, r, pos, charged, wf, df
            )
            level_match = level_match or am
            if am:
                progressed = True
            if crossed:
                self._cursors[lane] = self._cursors[lane] + (
                    b_max, b, level_match, progressed,
                )
                status[lane] = LANE_SUSPENDED
                return False
            if (
                level_match
                and self._m[lane] > 0
                and self._l0[lane] == 0
            ):
                cost = int(self._pop_lanes(lane_arr)[0])
                self._budget[lane] = 1
                if df[lane] != math.inf:
                    wf[lane] += cost
                    if wf[lane] >= df[lane]:
                        self._cursors[lane] = ("top",)
                        status[lane] = LANE_SUSPENDED
                        return False
                self._stall[lane] = 0
                return True
            hits = None
            r = pos = 0
            charged = False
            any_match = False
            b += 1
        budget = int(self._budget[lane])
        self._budget[lane] = budget + 1 if budget < self.nlimit else 1
        if progressed:
            self._stall[lane] = 0
        else:
            self._stall[lane] += 1
            if self._stall[lane] > self._stall_limit:
                raise RuntimeError(
                    "QECOOL engine made no progress over a full budget"
                    " cycle — matching policy bug"
                )
        return True

    # ------------------------------------------------------------------
    # Oracle cross-check helper
    # ------------------------------------------------------------------
    def scalar_twin(self, lane: int) -> QecoolEngine:
        """A fresh scalar engine of this batch's shape (the oracle the
        equivalence tests replay each lane's input stream through)."""
        return QecoolEngine(
            self.lattice, thv=self.thv, reg_size=self.reg_size,
            nlimit=self.nlimit, kernel_backend=self._kernel,
        )
