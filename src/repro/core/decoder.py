"""Batch/2-D decoder facade over the QECOOL engine.

``QecoolDecoder`` implements the package-wide
:class:`repro.decoders.base.Decoder` interface so it can be swapped
against the MWPM / Union-Find / greedy baselines in every experiment:

- ``thv=-1`` with an event stack of ``d + 1`` layers is the paper's
  **batch-QECOOL** (Fig. 4),
- a single-layer stack is the **2-D** decoder used for Table IV's 2-D
  threshold column.

The online decoder, which interleaves decoding with measurement arrivals
under a finite clock, lives in :mod:`repro.core.online`.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import QecoolEngine
from repro.decoders.base import DecodeResult, Decoder, correction_from_matches
from repro.surface_code.lattice import PlanarLattice

__all__ = ["QecoolDecoder"]


class QecoolDecoder(Decoder):
    """Spike-based greedy matching decoder (batch mode).

    Parameters
    ----------
    thv:
        Vertical look-ahead threshold handed to the engine; ``-1``
        (default) is the paper's batch configuration.
    nlimit:
        Optional cap on the Controller's growing hop budget.
    """

    name = "qecool"

    def __init__(self, thv: int = -1, nlimit: int | None = None):
        self.thv = thv
        self.nlimit = nlimit

    def decode(self, lattice: PlanarLattice, events: np.ndarray) -> DecodeResult:
        events = np.asarray(events, dtype=np.uint8)
        if events.ndim == 1:
            events = events[None, :]
        engine = QecoolEngine(lattice, thv=self.thv, nlimit=self.nlimit)
        for row in events:
            engine.push_layer(row)
        engine.decode_loaded()
        return DecodeResult(
            matches=engine.matches,
            correction=correction_from_matches(lattice, engine.matches),
            cycles=engine.cycles,
            layer_cycles=list(engine.layer_cycles),
        )
