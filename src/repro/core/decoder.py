"""Batch/2-D decoder facade over the QECOOL engine.

``QecoolDecoder`` implements the package-wide
:class:`repro.decoders.base.Decoder` interface so it can be swapped
against the MWPM / Union-Find / greedy baselines in every experiment:

- ``thv=-1`` with an event stack of ``d + 1`` layers is the paper's
  **batch-QECOOL** (Fig. 4),
- a single-layer stack is the **2-D** decoder used for Table IV's 2-D
  threshold column.

The online decoder, which interleaves decoding with measurement arrivals
under a finite clock, lives in :mod:`repro.core.online`.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import QecoolEngine
from repro.core.engine_batch import QecoolEngineBatch
from repro.decoders.base import DecodeResult, Decoder, correction_from_matches
from repro.surface_code.lattice import PlanarLattice

__all__ = ["BATCH_DECODE_CUTOFF", "QecoolDecoder"]

BATCH_DECODE_CUTOFF = 64
"""Minimum batch size for the shot-major drain path; smaller batches
cannot amortise the lock-step machinery and fall back to the scalar
engine (bit-identical either way).  Set at the measured break-even of
the committed ``drain_batch_vs_scalar_d9_c*`` chunk-scaling points
(~1.0x at 64 shots, 0.6x at 16)."""


class QecoolDecoder(Decoder):
    """Spike-based greedy matching decoder (batch mode).

    Parameters
    ----------
    thv:
        Vertical look-ahead threshold handed to the engine; ``-1``
        (default) is the paper's batch configuration.
    nlimit:
        Optional cap on the Controller's growing hop budget.
    kernel_backend:
        Engine-kernel backend name (see
        :mod:`repro.core.kernels`); ``None`` uses the process default.
    """

    name = "qecool"

    def __init__(
        self,
        thv: int = -1,
        nlimit: int | None = None,
        kernel_backend: str | None = None,
    ):
        self.thv = thv
        self.nlimit = nlimit
        self.kernel_backend = kernel_backend

    def decode(self, lattice: PlanarLattice, events: np.ndarray) -> DecodeResult:
        events = np.asarray(events, dtype=np.uint8)
        if events.ndim == 1:
            events = events[None, :]
        engine = QecoolEngine(
            lattice, thv=self.thv, nlimit=self.nlimit,
            kernel_backend=self.kernel_backend,
        )
        for row in events:
            engine.push_layer(row)
        engine.decode_loaded()
        return DecodeResult(
            matches=engine.matches,
            correction=correction_from_matches(lattice, engine.matches),
            cycles=engine.cycles,
            layer_cycles=list(engine.layer_cycles),
        )

    def decode_batch(
        self, lattice: PlanarLattice, events: np.ndarray
    ) -> list[DecodeResult]:
        """Drain a whole chunk through the shot-major batch engine.

        One :class:`~repro.core.engine_batch.QecoolEngineBatch` lane per
        shot: the layer loads, winner races and Controller sweeps run
        lock-step across the chunk, bit-identical to :meth:`decode` per
        stack (the per-shot engine remains the oracle, and the path for
        batches under :data:`BATCH_DECODE_CUTOFF`).
        """
        events = np.asarray(events, dtype=np.uint8)
        if events.ndim != 3 or events.shape[0] < BATCH_DECODE_CUTOFF:
            # Base-class validation and per-shot loop (one source for
            # both the shape contract and the scalar fallback).
            return super().decode_batch(lattice, events)
        shots = events.shape[0]
        batch = QecoolEngineBatch(
            lattice, thv=self.thv, nlimit=self.nlimit, capacity=shots,
            kernel_backend=self.kernel_backend,
        )
        lanes = np.fromiter(
            (batch.alloc_lane() for _ in range(shots)), np.int64, shots
        )
        for t in range(events.shape[1]):
            batch.push_layers(lanes, events[:, t])
        batch.begin_drain(lanes)
        batch.run_to_idle(lanes)
        results = []
        for lane in lanes.tolist():
            matches = batch.matches_of(lane)
            results.append(
                DecodeResult(
                    matches=matches,
                    correction=correction_from_matches(lattice, matches),
                    cycles=batch.cycles_of(lane),
                    layer_cycles=list(batch.layer_cycles_of(lane)),
                )
            )
        return results
