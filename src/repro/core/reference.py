"""Independent reference implementations of the QECOOL machine.

This module re-implements Algorithm 1 in the most literal, unoptimised
way possible — explicit per-Unit event lists, full Controller sweeps
with no analytic shortcuts, winners recomputed from scratch — so the
property-based tests can assert that the optimised engine
(:mod:`repro.core.engine`: uint64 array state, packed-key broadcast
races, lazily-validated winner cache) behaves *exactly* the same on
arbitrary inputs.

Two layers of reference:

- :func:`reference_greedy_matching` — drain-mode matching decisions
  only (the historical oracle for ``QecoolDecoder``),
- :class:`ReferenceEngine` — the full streaming machine: ``push_layer``
  with overflow refusal, the ``thv`` look-ahead gate, layer pops, and
  **cycle accounting** bit-compatible with ``QecoolEngine`` (see the
  class docstring for the one charging convention both share).

It intentionally shares only the spike arithmetic helpers
(:mod:`repro.core.spike`); control flow and state are kept separate so a
bug in the engine's optimisations cannot hide here.
"""

from __future__ import annotations

import numpy as np

from repro.core.spike import (
    SpikeCandidate,
    boundary_candidate,
    pair_candidate,
    vertical_candidate,
)
from repro.decoders.base import BOUNDARY_EAST, BOUNDARY_WEST, Match
from repro.surface_code.lattice import PlanarLattice

__all__ = ["ReferenceEngine", "reference_greedy_matching"]


def reference_greedy_matching(
    lattice: PlanarLattice,
    events: np.ndarray,
    thv: int = -1,
    nlimit: int | None = None,
) -> list[Match]:
    """Decode an event stack with the naive QECOOL policy; return matches.

    Mirrors the engine's drain-mode behaviour: pops (with Controller
    restart) when the oldest layer clears, growing hop budget, row-major
    token order, race-key winner selection.
    """
    events = np.asarray(events, dtype=np.uint8)
    if events.ndim == 1:
        events = events[None, :]
    n_layers = events.shape[0]
    if events.shape[1] != lattice.n_ancillas:
        raise ValueError("events have the wrong width")
    if nlimit is None:
        nlimit = lattice.rows + lattice.cols + n_layers + 2

    # reg[(r, c)] = sorted list of relative depths holding events.
    reg: dict[tuple[int, int], list[int]] = {
        (r, c): [] for r in range(lattice.rows) for c in range(lattice.cols)
    }
    for t in range(n_layers):
        for a in np.flatnonzero(events[t]):
            r, c = lattice.ancilla_coords(int(a))
            reg[(r, c)].append(t)
    m = n_layers
    popped = 0
    matches: list[Match] = []

    def first_at_or_above(unit: tuple[int, int], b: int) -> int | None:
        for t in reg[unit]:
            if t >= b:
                return t
        return None

    def winner_for(sink: tuple[int, int], b: int) -> SpikeCandidate:
        best = boundary_candidate(lattice, sink)
        own_higher = [t for t in reg[sink] if t > b]
        if own_higher:
            cand = vertical_candidate(own_higher[0] - b)
            if cand.key < best.key:
                best = cand
        for unit, depths in reg.items():
            if unit == sink or not depths:
                continue
            t = first_at_or_above(unit, b)
            if t is None:
                continue
            cand = pair_candidate(lattice, sink, unit, t - b)
            if cand.key < best.key:
                best = cand
        return best

    while True:
        # Pop cleared oldest layers (Controller restarts after a shift).
        while m > 0 and not any(depths and depths[0] == 0 for depths in reg.values()):
            for depths in reg.values():
                depths[:] = [t - 1 for t in depths]
            m -= 1
            popped += 1
        if m == 0:
            return matches
        made_progress = False
        for budget in range(1, nlimit + 1):
            restart = False
            for b in range(m):
                for r in range(lattice.rows):
                    for c in range(lattice.cols):
                        sink = (r, c)
                        if b not in reg[sink]:
                            continue
                        win = winner_for(sink, b)
                        if win.hops > budget:
                            continue
                        made_progress = True
                        reg[sink].remove(b)
                        t_abs = popped + b
                        if win.kind == "boundary":
                            side = BOUNDARY_WEST if win.side == "west" else BOUNDARY_EAST
                            matches.append(Match("boundary", (r, c, t_abs), side=side))
                        elif win.kind == "vertical":
                            t2 = b + win.t_rel
                            reg[sink].remove(t2)
                            matches.append(
                                Match("pair", (r, c, t_abs), (r, c, popped + t2))
                            )
                        else:
                            r2, c2 = win.source
                            t2 = b + win.t_rel
                            reg[(r2, c2)].remove(t2)
                            matches.append(
                                Match("pair", (r, c, t_abs), (r2, c2, popped + t2))
                            )
                # Shift check after each base-depth sub-sweep.
                if m > 0 and not any(
                    depths and depths[0] == 0 for depths in reg.values()
                ):
                    restart = True
                    break
            if restart:
                break
        else:
            if not made_progress:
                raise RuntimeError("reference matcher stalled — policy bug")


class ReferenceEngine:
    """Literal streaming QECOOL machine with cycle accounting.

    State is a plain ``dict`` of sorted per-Unit event depth lists; the
    Controller grows its hop budget one sweep at a time and *simulates
    every sweep in full*, recomputing every sink's race winner from
    scratch with the shared spike helpers — no bitmasks, no winner
    cache, no analytic skip.

    Cycle accounting follows the engine's charging convention: a sweep
    is charged to ``cycles`` only if it produced a match, or if it ran
    at the full ``nlimit`` budget (the engine simulates exactly those
    sweeps; provably-fruitless budget-growth sweeps are emitted to the
    caller's wall clock but never charged — see ``docs/DESIGN.md``
    section 4).  Matches, ``cycles``, ``layer_cycles``, pops and
    overflow refusals are bit-identical to :class:`~repro.core.engine.
    QecoolEngine` driven to the same IDLE points, which is what
    ``tests/test_engine_equivalence.py`` asserts on random streams.

    The machine is deliberately slow (every budget level is simulated
    unit by unit); use it only as a test oracle.
    """

    def __init__(
        self,
        lattice: PlanarLattice,
        thv: int = -1,
        reg_size: int | None = None,
        nlimit: int | None = None,
    ):
        if thv < -1:
            raise ValueError(f"thv must be >= -1, got {thv}")
        if reg_size is not None and reg_size < 1:
            raise ValueError(f"reg_size must be >= 1, got {reg_size}")
        self.lattice = lattice
        self.thv = thv
        self.reg_size = reg_size
        depth_hint = reg_size if reg_size is not None else lattice.d + 1
        self.nlimit = (
            nlimit
            if nlimit is not None
            else lattice.rows + lattice.cols + depth_hint + 2
        )
        self._stall_limit = self.nlimit + depth_hint + 4
        self.reg: dict[tuple[int, int], list[int]] = {
            (r, c): [] for r in range(lattice.rows) for c in range(lattice.cols)
        }
        self.m = 0
        self.popped = 0
        self.cycles = 0
        self._cycles_at_last_pop = 0
        self.layer_cycles: list[int] = []
        self.matches: list[Match] = []
        self._drain = False
        self._budget = 1
        self._stalled = 0

    # ------------------------------------------------------------------
    def push_layer(self, events_row: np.ndarray) -> bool:
        """Store one event layer; refuse (``False``) when the Reg is full."""
        if self.reg_size is not None and self.m >= self.reg_size:
            return False
        events_row = np.asarray(events_row, dtype=np.uint8)
        if events_row.shape != (self.lattice.n_ancillas,):
            raise ValueError("events_row has the wrong shape")
        for a in np.flatnonzero(events_row):
            self.reg[self.lattice.ancilla_coords(int(a))].append(self.m)
        self.m += 1
        return True

    def begin_drain(self) -> None:
        self._drain = True

    @property
    def defects_remaining(self) -> int:
        return sum(len(depths) for depths in self.reg.values())

    # ------------------------------------------------------------------
    def advance(self) -> None:
        """Run the Controller until it would idle (or, after
        :meth:`begin_drain`, until fully drained) — the literal
        counterpart of driving ``QecoolEngine.run`` to its next IDLE."""
        while True:
            progressed = False
            while self.m > 0 and not self._layer0_occupied():
                self._pop()
                self._budget = 1
                progressed = True
            if self._drain and self.m == 0:
                return
            b_max = self._b_max()
            if not self._has_sinks(b_max):
                if self._drain and self.m > 0 and self.defects_remaining == 0:
                    raise RuntimeError("drain stalled with no defects but layers left")
                self._budget = 1
                return
            matched, popped_mid_sweep = self._sweep(self._budget, b_max)
            progressed = progressed or matched or popped_mid_sweep
            if popped_mid_sweep:
                self._budget = 1
            elif self._budget < self.nlimit:
                self._budget += 1
            else:
                self._budget = 1
            if progressed:
                self._stalled = 0
            else:
                self._stalled += 1
                if self._stalled > self._stall_limit:
                    raise RuntimeError("reference engine stalled — policy bug")

    # ------------------------------------------------------------------
    def _b_max(self) -> int:
        if self._drain or self.thv < 0:
            return self.m - 1
        return min(self.m - 1, self.m - self.thv - 1)

    def _layer0_occupied(self) -> bool:
        return any(depths and depths[0] == 0 for depths in self.reg.values())

    def _has_sinks(self, b_max: int) -> bool:
        return b_max >= 0 and any(
            depths and depths[0] <= b_max for depths in self.reg.values()
        )

    def _row_active(self, r: int) -> bool:
        return any(self.reg[(r, c)] for c in range(self.lattice.cols))

    def _winner(self, sink: tuple[int, int], b: int) -> SpikeCandidate:
        best = boundary_candidate(self.lattice, sink)
        own_higher = [t for t in self.reg[sink] if t > b]
        if own_higher:
            cand = vertical_candidate(own_higher[0] - b)
            if cand.key < best.key:
                best = cand
        for unit, depths in self.reg.items():
            if unit == sink or not depths:
                continue
            t = next((t for t in depths if t >= b), None)
            if t is None:
                continue
            cand = pair_candidate(self.lattice, sink, unit, t - b)
            if cand.key < best.key:
                best = cand
        return best

    def _sweep(self, budget: int, b_max: int) -> tuple[bool, bool]:
        """One full literal sweep at ``budget``; charges itself per the
        shared convention (matched sweeps and nlimit sweeps only)."""
        lattice = self.lattice
        matched = False
        cost = 0
        for b in range(b_max + 1):
            any_match_this_b = False
            for r in range(lattice.rows):
                if not self._row_active(r):
                    cost += 1
                    continue
                cost += lattice.cols
                for c in range(lattice.cols):
                    sink = (r, c)
                    if b not in self.reg[sink]:
                        continue
                    win = self._winner(sink, b)
                    if win.hops > budget:
                        cost += 2 * budget + 2
                        continue
                    matched = True
                    any_match_this_b = True
                    self.reg[sink].remove(b)
                    t_abs = self.popped + b
                    if win.kind == "boundary":
                        side = BOUNDARY_WEST if win.side == "west" else BOUNDARY_EAST
                        self.matches.append(Match("boundary", (r, c, t_abs), side=side))
                        cost += 2 * budget + 2
                    elif win.kind == "vertical":
                        t2 = b + win.t_rel
                        self.reg[sink].remove(t2)
                        self.matches.append(
                            Match("pair", (r, c, t_abs), (r, c, self.popped + t2))
                        )
                        cost += 2 * win.hops + 2
                    else:
                        r2, c2 = win.source
                        t2 = b + win.t_rel
                        self.reg[(r2, c2)].remove(t2)
                        self.matches.append(
                            Match("pair", (r, c, t_abs), (r2, c2, self.popped + t2))
                        )
                        cost += 2 * win.hops + 2
            if any_match_this_b and self.m > 0 and not self._layer0_occupied():
                self.cycles += cost  # matched sweeps are always charged
                self._pop()
                return matched, True
        if matched or budget == self.nlimit:
            self.cycles += cost
        return matched, False

    def _pop(self) -> None:
        for depths in self.reg.values():
            depths[:] = [t - 1 for t in depths]
        self.m -= 1
        self.popped += 1
        self.cycles += 1 + sum(
            self.lattice.cols if self._row_active(r) else 1
            for r in range(self.lattice.rows)
        )
        self.layer_cycles.append(self.cycles - self._cycles_at_last_pop)
        self._cycles_at_last_pop = self.cycles
