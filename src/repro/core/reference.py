"""Independent reference implementation of the QECOOL matching policy.

This module re-implements Algorithm 1's matching semantics in the most
literal, unoptimised way possible — explicit per-Unit event lists, full
Controller sweeps with no analytic shortcuts, winners recomputed from
scratch — so the property-based tests can assert that the optimised
engine (:mod:`repro.core.engine`, bitmasks + sweep skipping) makes
*exactly* the same matching decisions on arbitrary inputs.

It intentionally shares only the spike arithmetic helpers
(:mod:`repro.core.spike`); control flow and state are kept separate so a
bug in the engine's optimisations cannot hide here.
"""

from __future__ import annotations

import numpy as np

from repro.core.spike import (
    SpikeCandidate,
    boundary_candidate,
    pair_candidate,
    vertical_candidate,
)
from repro.decoders.base import BOUNDARY_EAST, BOUNDARY_WEST, Match
from repro.surface_code.lattice import PlanarLattice

__all__ = ["reference_greedy_matching"]


def reference_greedy_matching(
    lattice: PlanarLattice,
    events: np.ndarray,
    thv: int = -1,
    nlimit: int | None = None,
) -> list[Match]:
    """Decode an event stack with the naive QECOOL policy; return matches.

    Mirrors the engine's drain-mode behaviour: pops (with Controller
    restart) when the oldest layer clears, growing hop budget, row-major
    token order, race-key winner selection.
    """
    events = np.asarray(events, dtype=np.uint8)
    if events.ndim == 1:
        events = events[None, :]
    n_layers = events.shape[0]
    if events.shape[1] != lattice.n_ancillas:
        raise ValueError("events have the wrong width")
    if nlimit is None:
        nlimit = lattice.rows + lattice.cols + n_layers + 2

    # reg[(r, c)] = sorted list of relative depths holding events.
    reg: dict[tuple[int, int], list[int]] = {
        (r, c): [] for r in range(lattice.rows) for c in range(lattice.cols)
    }
    for t in range(n_layers):
        for a in np.flatnonzero(events[t]):
            r, c = lattice.ancilla_coords(int(a))
            reg[(r, c)].append(t)
    m = n_layers
    popped = 0
    matches: list[Match] = []

    def first_at_or_above(unit: tuple[int, int], b: int) -> int | None:
        for t in reg[unit]:
            if t >= b:
                return t
        return None

    def winner_for(sink: tuple[int, int], b: int) -> SpikeCandidate:
        best = boundary_candidate(lattice, sink)
        own_higher = [t for t in reg[sink] if t > b]
        if own_higher:
            cand = vertical_candidate(own_higher[0] - b)
            if cand.key < best.key:
                best = cand
        for unit, depths in reg.items():
            if unit == sink or not depths:
                continue
            t = first_at_or_above(unit, b)
            if t is None:
                continue
            cand = pair_candidate(lattice, sink, unit, t - b)
            if cand.key < best.key:
                best = cand
        return best

    while True:
        # Pop cleared oldest layers (Controller restarts after a shift).
        while m > 0 and not any(depths and depths[0] == 0 for depths in reg.values()):
            for depths in reg.values():
                depths[:] = [t - 1 for t in depths]
            m -= 1
            popped += 1
        if m == 0:
            return matches
        made_progress = False
        for budget in range(1, nlimit + 1):
            restart = False
            for b in range(m):
                for r in range(lattice.rows):
                    for c in range(lattice.cols):
                        sink = (r, c)
                        if b not in reg[sink]:
                            continue
                        win = winner_for(sink, b)
                        if win.hops > budget:
                            continue
                        made_progress = True
                        reg[sink].remove(b)
                        t_abs = popped + b
                        if win.kind == "boundary":
                            side = BOUNDARY_WEST if win.side == "west" else BOUNDARY_EAST
                            matches.append(Match("boundary", (r, c, t_abs), side=side))
                        elif win.kind == "vertical":
                            t2 = b + win.t_rel
                            reg[sink].remove(t2)
                            matches.append(
                                Match("pair", (r, c, t_abs), (r, c, popped + t2))
                            )
                        else:
                            r2, c2 = win.source
                            t2 = b + win.t_rel
                            reg[(r2, c2)].remove(t2)
                            matches.append(
                                Match("pair", (r, c, t_abs), (r2, c2, popped + t2))
                            )
                # Shift check after each base-depth sub-sweep.
                if m > 0 and not any(
                    depths and depths[0] == 0 for depths in reg.values()
                ):
                    restart = True
                    break
            if restart:
                break
        else:
            if not made_progress:
                raise RuntimeError("reference matcher stalled — policy bug")
