"""Shared utilities: statistics and random-number handling."""

from repro.util.rng import make_rng, spawn_rngs
from repro.util.stats import (
    RateEstimate,
    mean_std,
    wilson_interval,
)

__all__ = [
    "RateEstimate",
    "make_rng",
    "mean_std",
    "spawn_rngs",
    "wilson_interval",
]
