"""Statistics helpers for Monte-Carlo estimates.

Logical-error-rate experiments report binomial proportions with Wilson
confidence intervals; cycle-count experiments report mean / max / standard
deviation, matching the columns of Table III in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["RateEstimate", "wilson_interval", "mean_std"]


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because logical error rates in
    the sub-threshold regime are tiny and the normal interval would cross
    zero.

    Returns ``(low, high)``; ``(0.0, 1.0)`` when ``trials`` is zero.
    """
    if trials < 0 or successes < 0 or successes > trials:
        raise ValueError(f"invalid counts: {successes}/{trials}")
    if trials == 0:
        return (0.0, 1.0)
    p_hat = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    centre = (p_hat + z2 / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(p_hat * (1 - p_hat) / trials + z2 / (4 * trials * trials))
    low = 0.0 if successes == 0 else max(0.0, centre - half)
    high = 1.0 if successes == trials else min(1.0, centre + half)
    return (low, high)


def mean_std(values: list[float] | tuple[float, ...]) -> tuple[float, float]:
    """Population mean and standard deviation of ``values``.

    Population (not sample) std matches how the paper's Table III sigma is
    computed over the full set of per-layer cycle counts.
    """
    if not values:
        return (0.0, 0.0)
    n = len(values)
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / n
    return (mean, math.sqrt(var))


@dataclass(frozen=True)
class RateEstimate:
    """A binomial rate estimate with its Wilson confidence interval."""

    successes: int
    trials: int
    z: float = 1.96

    @property
    def rate(self) -> float:
        """Point estimate; 0.0 when no trials were run."""
        return self.successes / self.trials if self.trials else 0.0

    @property
    def interval(self) -> tuple[float, float]:
        """Wilson ``(low, high)`` confidence interval."""
        return wilson_interval(self.successes, self.trials, self.z)

    def __str__(self) -> str:
        low, high = self.interval
        return f"{self.rate:.3e} [{low:.3e}, {high:.3e}] ({self.successes}/{self.trials})"
