"""Random-number-generator helpers.

All Monte-Carlo entry points in this package accept either an integer seed
or a ready-made :class:`numpy.random.Generator`.  Centralising the
conversion here keeps experiment code deterministic and reproducible.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn_rngs"]


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (fresh OS entropy), an integer, or an existing
    generator (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Split ``seed`` into ``n`` statistically independent generators.

    Used by shot runners so each trial stream is independent regardless of
    how many samples earlier trials consumed.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    root = make_rng(seed)
    return [np.random.default_rng(s) for s in root.bit_generator.seed_seq.spawn(n)]
