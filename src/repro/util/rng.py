"""Random-number-generator helpers.

All Monte-Carlo entry points in this package accept either an integer seed
or a ready-made :class:`numpy.random.Generator`.  Centralising the
conversion here keeps experiment code deterministic and reproducible.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "seed_root", "spawn_rngs", "substream"]


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (fresh OS entropy), an integer, or an existing
    generator (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Split ``seed`` into ``n`` statistically independent generators.

    Used by shot runners so each trial stream is independent regardless of
    how many samples earlier trials consumed.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    root = make_rng(seed)
    return [np.random.default_rng(s) for s in root.bit_generator.seed_seq.spawn(n)]


def seed_root(
    seed: int | np.random.Generator | np.random.SeedSequence | None,
) -> np.random.SeedSequence:
    """Canonical :class:`numpy.random.SeedSequence` for any seed form.

    ``seed`` may be ``None`` (fresh OS entropy), an integer, a
    ``SeedSequence`` (returned unchanged) or a ``Generator``.  This is
    the anchor the sharded executor derives per-shot substreams from,
    so the same integer always names the same family of streams.

    A ``Generator`` contributes a freshly *spawned* child of its seed
    sequence — a stateful operation, so successive calls with the same
    generator yield independent roots.  That preserves the historical
    contract that reusing one generator across points samples fresh
    noise each time (reading the generator's initial seed sequence
    directly would silently replay identical noise on every call).
    For the same reason a ``SeedSequence`` that has already spawned
    children contributes a fresh child rather than itself: its
    spawn-keyed substreams (children ``0..n-1``) are exactly the
    streams those earlier children already use, and sharing them would
    correlate supposedly independent samples.
    """
    if isinstance(seed, np.random.SeedSequence):
        if seed.n_children_spawned:
            return seed.spawn(1)[0]
        return seed
    if isinstance(seed, np.random.Generator):
        return seed.bit_generator.seed_seq.spawn(1)[0]
    return np.random.SeedSequence(seed)


def substream(root: np.random.SeedSequence, index: int) -> np.random.Generator:
    """The ``index``-th child stream of ``root``, derived statelessly.

    For a root that has never spawned, this is bit-identical to
    ``root.spawn(index + 1)[index]`` (a spawned child's key is the
    parent's ``spawn_key`` extended by its index) but without mutating
    ``root``'s spawn counter, so any worker process can derive any
    shot's generator independently — the foundation of
    chunking-invariant Monte-Carlo results.  Callers must not mix
    stateful ``spawn`` and ``substream`` on the same root
    (:func:`seed_root` hands out fresh roots to prevent exactly that).
    """
    if index < 0:
        raise ValueError(f"index must be non-negative, got {index}")
    child = np.random.SeedSequence(
        entropy=root.entropy,
        spawn_key=tuple(root.spawn_key) + (index,),
        pool_size=root.pool_size,
    )
    return np.random.default_rng(child)
