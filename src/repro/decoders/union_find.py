"""Union-Find decoder (Delfosse–Nickerson) for the 3-D lattice.

The paper's Table IV compares against the Union-Find decoder [3] (with
Das et al.'s micro-architecture [2] as its hardware realisation).  This
is a faithful software implementation:

1. **Cluster growth.**  Every defect seeds a cluster.  While any cluster
   has odd defect parity and does not touch the lattice boundary, all
   such *active* clusters grow by half an edge around their perimeter;
   edges grown from both sides (or twice from one) become *erased* and
   merge their endpoints' clusters (weighted union-find with parity and
   boundary flags).
2. **Peeling.**  The erased edge set is an erasure containing all
   defects; the Delfosse–Zémor peeling decoder extracts a correction
   inside it: build a spanning forest, process edges leaf-inward, and
   keep an edge iff its leaf vertex currently holds a defect (toggling
   the other endpoint).

The decoding graph has one vertex per (ancilla, layer) plus a single
virtual boundary vertex absorbing every west/east boundary edge; the
boundary vertex's cluster is always neutral.  Temporal edges carry no
data correction; spatial and boundary edges map to the data qubit they
cross.  The graph is cached per (lattice, n_layers) since Monte-Carlo
loops reuse it tens of thousands of times.
"""

from __future__ import annotations

import numpy as np

from repro.decoders.base import DecodeResult, Decoder
from repro.surface_code.lattice import PlanarLattice

__all__ = ["UnionFindDecoder"]


class _Graph:
    """Static decoding graph for (lattice, n_layers)."""

    def __init__(self, lattice: PlanarLattice, n_layers: int):
        self.lattice = lattice
        self.n_layers = n_layers
        rows, cols = lattice.rows, lattice.cols
        self.n_vertices = lattice.n_ancillas * n_layers + 1
        self.boundary_vertex = self.n_vertices - 1

        def vid(r: int, c: int, t: int) -> int:
            return (r * cols + c) * n_layers + t

        self.vid = vid
        # Edge arrays via numpy index arithmetic, in the same
        # (t, r, c) x [east, south, up, west-boundary, east-boundary]
        # order the former triple Python loop produced: build each edge
        # family over the full (t, r, c) grid, then interleave them
        # per-vertex with a stable mask-compress.
        t = np.arange(n_layers)
        r = np.arange(rows)
        c = np.arange(cols)
        tg, rg, cg = np.meshgrid(t, r, c, indexing="ij")
        tg, rg, cg = tg.ravel(), rg.ravel(), cg.ravel()
        u = (rg * cols + cg) * n_layers + tg
        n_h = rows * (cols + 1)
        horiz = rg * (cols + 1) + cg  # lattice.horizontal_index(r, c)
        vert = n_h + rg * cols + cg  # lattice.vertical_index(r, c)
        families = [
            # (valid mask, v, data qubit)
            (cg + 1 < cols, u + n_layers, horiz + 1),
            (rg + 1 < rows, u + cols * n_layers, vert),
            (tg + 1 < n_layers, u + 1, np.full_like(u, -1)),
            (cg == 0, np.full_like(u, self.boundary_vertex), rg * (cols + 1)),
            (
                cg == cols - 1,
                np.full_like(u, self.boundary_vertex),
                rg * (cols + 1) + cols,
            ),
        ]
        n_fam = len(families)
        valid = np.stack([f[0] for f in families])  # (5, V)
        us = np.broadcast_to(u, (n_fam, u.size))
        vs = np.stack([f[1] for f in families])
        qs = np.stack([f[2] for f in families])
        keep = valid.T.ravel()  # vertex-major, family-minor: loop order
        edge_u = us.T.ravel()[keep]
        edge_v = vs.T.ravel()[keep]
        edge_q = qs.T.ravel()[keep]
        self.edges = list(
            zip(edge_u.tolist(), edge_v.tolist(), edge_q.tolist())
        )
        self.adjacency: list[list[tuple[int, int]]] = [[] for _ in range(self.n_vertices)]
        for eid, (eu, ev, _) in enumerate(self.edges):
            self.adjacency[eu].append((eid, ev))
            self.adjacency[ev].append((eid, eu))


_GRAPH_CACHE: dict[tuple[int, int], _Graph] = {}


def _graph_for(lattice: PlanarLattice, n_layers: int) -> _Graph:
    key = (lattice.d, n_layers)
    graph = _GRAPH_CACHE.get(key)
    if graph is None or graph.lattice is not lattice and graph.lattice != lattice:
        graph = _Graph(lattice, n_layers)
        _GRAPH_CACHE[key] = graph
    return graph


class UnionFindDecoder(Decoder):
    """Delfosse–Nickerson Union-Find decoder on the 3-D lattice."""

    name = "union-find"

    def decode(self, lattice: PlanarLattice, events: np.ndarray) -> DecodeResult:
        events = np.asarray(events, dtype=np.uint8)
        if events.ndim == 1:
            events = events[None, :]
        graph = _graph_for(lattice, events.shape[0])
        # One vectorized pass over the event stack; np.nonzero's
        # row-major order reproduces the former (t, a) double loop.
        t_idx, a_idx = np.nonzero(events)
        defect_vertices = (
            a_idx.astype(np.int64) * events.shape[0] + t_idx
        ).tolist()
        erasure = _grow_clusters(graph, defect_vertices)
        correction_edges = _peel(graph, erasure, defect_vertices)
        correction = np.zeros(lattice.n_data, dtype=np.uint8)
        for eid in correction_edges:
            q = graph.edges[eid][2]
            if q >= 0:
                correction[q] ^= 1
        return DecodeResult(matches=[], correction=correction)


# ----------------------------------------------------------------------
# Stage 1: cluster growth
# ----------------------------------------------------------------------
def _grow_clusters(graph: _Graph, defect_vertices: list[int]) -> set[int]:
    """Grow clusters until all are neutral; return the erased edge ids."""
    n = graph.n_vertices
    parent = list(range(n))
    size = [1] * n
    parity = [0] * n  # defect parity per root
    touches_boundary = [False] * n
    touches_boundary[graph.boundary_vertex] = True

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra == rb:
            return
        if size[ra] < size[rb]:
            ra, rb = rb, ra
        parent[rb] = ra
        size[ra] += size[rb]
        parity[ra] ^= parity[rb]
        touches_boundary[ra] = touches_boundary[ra] or touches_boundary[rb]

    for v in defect_vertices:
        parity[v] ^= 1

    # Vertices currently inside any cluster (grown region).
    in_cluster = set(defect_vertices)
    in_cluster.add(graph.boundary_vertex)
    support = {}  # edge id -> growth 0..2

    def active_roots() -> set[int]:
        roots = set()
        for v in in_cluster:
            r = find(v)
            if parity[r] and not touches_boundary[r]:
                roots.add(r)
        return roots

    guard = 0
    while True:
        roots = active_roots()
        if not roots:
            return {eid for eid, s in support.items() if s >= 2}
        guard += 1
        if guard > 4 * n:
            raise RuntimeError("union-find growth failed to terminate")
        # Grow every active cluster by half an edge around its perimeter.
        grown: list[tuple[int, int, int]] = []  # (eid, u, v)
        for v in list(in_cluster):
            if find(v) not in roots:
                continue
            for eid, w in graph.adjacency[v]:
                s = support.get(eid, 0)
                if s >= 2:
                    continue
                s += 1
                support[eid] = s
                if s >= 2:
                    grown.append((eid, v, w))
        for eid, u, w in grown:
            in_cluster.add(u)
            in_cluster.add(w)
            union(u, w)


# ----------------------------------------------------------------------
# Stage 2: peeling
# ----------------------------------------------------------------------
def _peel(graph: _Graph, erasure: set[int], defect_vertices: list[int]) -> list[int]:
    """Peeling decoder: correction edges within the erasure."""
    marked = set()
    for v in defect_vertices:
        if v in marked:
            marked.discard(v)
        else:
            marked.add(v)

    # Spanning forest of the erasure, rooted at the boundary vertex first
    # so it always sits at the top (it may absorb any leftover parity).
    visited = [False] * graph.n_vertices
    order: list[tuple[int, int, int]] = []  # (eid, parent, child) in BFS order

    def bfs(root: int) -> None:
        visited[root] = True
        queue = [root]
        while queue:
            u = queue.pop()
            for eid, w in graph.adjacency[u]:
                if eid not in erasure or visited[w]:
                    continue
                visited[w] = True
                order.append((eid, u, w))
                queue.append(w)

    bfs(graph.boundary_vertex)
    for v in range(graph.n_vertices):
        if not visited[v]:
            bfs(v)

    correction: list[int] = []
    for eid, parent_v, child in reversed(order):
        if child in marked:
            correction.append(eid)
            marked.discard(child)
            if parent_v in marked:
                marked.discard(parent_v)
            else:
                marked.add(parent_v)
    marked.discard(graph.boundary_vertex)
    if marked:
        raise RuntimeError("peeling left unresolved defects — erasure did not cover them")
    return correction
