"""Minimum-weight perfect matching (MWPM) baseline decoder.

This is the paper's accuracy reference (Fowler's MWPM [7]): match every
defect either to another defect or to the nearest rough (west/east)
boundary, minimising the total 3-D Manhattan weight, then project the
matching onto data-qubit corrections.

Implementation
--------------
We first apply the standard *useful-edge* reduction: a pair edge with
``w(a, b) >= bd(a) + bd(b)`` never needs to appear in an optimal
solution (replacing it by the two boundary matches cannot increase the
weight).  The graph of useful edges decomposes the problem into
independent connected components, each solved exactly with networkx's
blossom implementation on the usual boundary-copy gadget:

    defect i --- defect j          weight w(i, j)   (useful edges only)
    defect i --- copy b_i          weight bd(i)
    copy b_i --- copy b_j          weight 0         (all pairs)

Components larger than ``exact_component_limit`` fall back to a
Hungarian-assignment seed (mutual pairs of the optimal assignment on the
doubled problem) polished by an exhaustive-pairwise 2-opt; measured
against blossom on realistic giant components this lands within ~0-2% of
the optimal weight (see ``tests/test_mwpm.py``).  Fallback invocations
are counted on the decoder so experiments can report when it fired.
"""

from __future__ import annotations

import itertools

import networkx as nx
import numpy as np

from repro.decoders.base import (
    BOUNDARY_EAST,
    BOUNDARY_WEST,
    Coord,
    DecodeResult,
    Decoder,
    Match,
    correction_from_matches,
    defects_of,
)
from repro.surface_code.lattice import PlanarLattice

__all__ = ["MwpmDecoder", "pair_distance"]


def pair_distance(a: Coord, b: Coord) -> int:
    """3-D Manhattan distance between defects."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1]) + abs(a[2] - b[2])


class MwpmDecoder(Decoder):
    """Exact MWPM decoder (with a documented large-component fallback).

    Parameters
    ----------
    exact_component_limit:
        Components with more defects than this use the greedy + 2-opt
        fallback instead of blossom.  The default keeps worst-case decode
        time bounded near threshold; below threshold components are tiny
        and everything is exact.
    """

    name = "mwpm"

    def __init__(self, exact_component_limit: int = 60):
        if exact_component_limit < 2:
            raise ValueError("exact_component_limit must be >= 2")
        self.exact_component_limit = exact_component_limit
        self.fallback_uses = 0

    # ------------------------------------------------------------------
    def decode(self, lattice: PlanarLattice, events: np.ndarray) -> DecodeResult:
        defects = defects_of(events, lattice)
        matches = self.match_defects(lattice, defects)
        return DecodeResult(
            matches=matches,
            correction=correction_from_matches(lattice, matches),
        )

    def match_defects(self, lattice: PlanarLattice, defects: list[Coord]) -> list[Match]:
        """Match a defect list (exposed for direct use and testing)."""
        if not defects:
            return []
        components = _useful_components(lattice, defects)
        matches: list[Match] = []
        for comp in components:
            if len(comp) <= self.exact_component_limit:
                matches.extend(_blossom_component(lattice, comp))
            else:
                self.fallback_uses += 1
                matches.extend(_greedy_two_opt(lattice, comp))
        return matches


# ----------------------------------------------------------------------
# Useful-edge decomposition
# ----------------------------------------------------------------------
def _boundary(lattice: PlanarLattice, d: Coord) -> tuple[int, str]:
    west = lattice.west_distance(d[1])
    east = lattice.east_distance(d[1])
    if west <= east:
        return west, BOUNDARY_WEST
    return east, BOUNDARY_EAST


def _useful_components(
    lattice: PlanarLattice, defects: list[Coord]
) -> list[list[Coord]]:
    """Connected components of the useful-pair-edge graph."""
    n = len(defects)
    bd = [_boundary(lattice, d)[0] for d in defects]
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for i in range(n):
        for j in range(i + 1, n):
            if pair_distance(defects[i], defects[j]) < bd[i] + bd[j]:
                ri, rj = find(i), find(j)
                if ri != rj:
                    parent[ri] = rj
    groups: dict[int, list[Coord]] = {}
    for i in range(n):
        groups.setdefault(find(i), []).append(defects[i])
    return list(groups.values())


# ----------------------------------------------------------------------
# Exact solve per component
# ----------------------------------------------------------------------
def _blossom_component(lattice: PlanarLattice, comp: list[Coord]) -> list[Match]:
    if len(comp) == 1:
        _, side = _boundary(lattice, comp[0])
        return [Match("boundary", comp[0], side=side)]
    graph = nx.Graph()
    n = len(comp)
    bd = [_boundary(lattice, d) for d in comp]
    for i in range(n):
        graph.add_edge(("d", i), ("b", i), weight=bd[i][0])
    for i, j in itertools.combinations(range(n), 2):
        w = pair_distance(comp[i], comp[j])
        if w < bd[i][0] + bd[j][0]:
            graph.add_edge(("d", i), ("d", j), weight=w)
        graph.add_edge(("b", i), ("b", j), weight=0)
    mate = nx.min_weight_matching(graph, weight="weight")
    matches: list[Match] = []
    for u, v in mate:
        if u[0] == "b" and v[0] == "b":
            continue
        if u[0] == "b":
            u, v = v, u
        if v[0] == "d":
            matches.append(Match("pair", comp[u[1]], comp[v[1]]))
        else:
            matches.append(Match("boundary", comp[u[1]], side=bd[u[1]][1]))
    return matches


# ----------------------------------------------------------------------
# Fallback for oversized components: assignment seed + 2-opt refinement
# ----------------------------------------------------------------------
def _all_partitions(indices: tuple[int, ...]):
    """Every partition of ``indices`` into pairs and singletons."""
    if not indices:
        yield ()
        return
    first, rest = indices[0], indices[1:]
    for tail in _all_partitions(rest):
        yield ((first, None),) + tail
    for pos, j in enumerate(rest):
        reduced = rest[:pos] + rest[pos + 1:]
        for tail in _all_partitions(reduced):
            yield ((first, j),) + tail


def _assignment_seed(
    comp: list[Coord], bd: list[tuple[int, str]]
) -> list[tuple[int, int | None]]:
    """Seed groups from a Hungarian assignment on the doubled problem.

    Nodes 0..n-1 are defects, n..2n-1 their boundary copies.  The
    optimal assignment's *mutual* decisions (sigma(i) = j and
    sigma(j) = i, or defect <-> own copy) are near-optimal matching
    decisions capturing long-range structure greedy misses; the few
    non-mutual leftovers are paired greedily afterwards.
    """
    from scipy.optimize import linear_sum_assignment

    n = len(comp)
    big = 10 ** 6
    cost = np.full((2 * n, 2 * n), float(big))
    for i in range(n):
        cost[i, n + i] = cost[n + i, i] = bd[i][0]
        for j in range(i + 1, n):
            w = pair_distance(comp[i], comp[j])
            if w < bd[i][0] + bd[j][0]:
                cost[i, j] = cost[j, i] = w
    cost[n:, n:] = 0.0
    _, sigma = linear_sum_assignment(cost)

    groups: list[tuple[int, int | None]] = []
    used: set[int] = set()
    for i in range(n):
        if i in used:
            continue
        target = int(sigma[i])
        if target == n + i and int(sigma[n + i]) == i:
            groups.append((i, None))
            used.add(i)
        elif target < n and int(sigma[target]) == i:
            groups.append((i, target))
            used.update((i, target))
    leftovers = [i for i in range(n) if i not in used]
    # Greedy over the leftovers (small set): cheapest option first.
    options: list[tuple[int, int, int, int | None]] = []
    for pos, i in enumerate(leftovers):
        options.append((bd[i][0], 1, i, None))
        for j in leftovers[pos + 1:]:
            w = pair_distance(comp[i], comp[j])
            if w < bd[i][0] + bd[j][0]:
                options.append((w, 0, i, j))
    options.sort()
    alive = set(leftovers)
    for _, _, i, j in options:
        if i not in alive:
            continue
        if j is None:
            groups.append((i, None))
            alive.discard(i)
        elif j in alive:
            groups.append((i, j))
            alive.discard(i)
            alive.discard(j)
    return groups


def _greedy_two_opt(lattice: PlanarLattice, comp: list[Coord]) -> list[Match]:
    n = len(comp)
    bd = [_boundary(lattice, d) for d in comp]

    # The 2-opt loop evaluates pair weights millions of times on large
    # components; tabulate them once from the lattice's cached pairwise
    # Manhattan table (the same table the engine geometry cache builds)
    # plus the temporal span, instead of recomputing pair_distance.
    anc = np.fromiter(
        (r * lattice.cols + c for r, c, _ in comp), np.int64, n
    )
    ts = np.fromiter((t for _, _, t in comp), np.int64, n)
    pair_w = (
        lattice.pairwise_manhattan[anc[:, None], anc[None, :]].astype(np.int64)
        + np.abs(ts[:, None] - ts[None, :])
    ).tolist()

    def weight_of(i: int, j: int | None) -> int:
        return bd[i][0] if j is None else pair_w[i][j]

    def centroid(group: tuple[int, int | None]) -> tuple[float, float, float]:
        members = [m for m in group if m is not None]
        return tuple(
            sum(comp[m][axis] for m in members) / len(members) for axis in range(3)
        )

    groups = _assignment_seed(comp, bd)

    # 2-opt refinement: exhaustively re-partition pairs of groups (at
    # most 4 defects at a time, so each local move is exact).  On very
    # large components only spatially nearby group pairs are attempted —
    # distant re-pairings cannot be cheaper than the boundary options
    # the seed already considered.
    locality_cap = len(groups) > 120
    improvements = 0
    max_improvements = 20 * n + 100
    improved = True
    while improved and improvements < max_improvements:
        improved = False
        centroids = [centroid(g) for g in groups]
        gi = 0
        while gi < len(groups):
            gj = gi + 1
            while gj < len(groups):
                if locality_cap:
                    ca, cb = centroids[gi], centroids[gj]
                    if abs(ca[0] - cb[0]) + abs(ca[1] - cb[1]) + abs(ca[2] - cb[2]) > 10:
                        gj += 1
                        continue
                members = tuple(
                    x for x in groups[gi] + groups[gj] if x is not None
                )
                current = sum(weight_of(i, j) for i, j in (groups[gi], groups[gj]))
                best_plan, best_w = None, current
                for plan in _all_partitions(members):
                    w = sum(weight_of(i, j) for i, j in plan)
                    if w < best_w:
                        best_plan, best_w = plan, w
                if best_plan is None:
                    gj += 1
                    continue
                replacement = list(best_plan)
                groups[gi] = replacement.pop(0)
                centroids[gi] = centroid(groups[gi])
                if replacement:
                    groups[gj] = replacement.pop(0)
                    centroids[gj] = centroid(groups[gj])
                    for extra in replacement:
                        groups.append(extra)
                        centroids.append(centroid(extra))
                    gj += 1
                else:
                    groups.pop(gj)
                    centroids.pop(gj)
                    # Do not advance gj: the next group shifted into it.
                improved = True
                improvements += 1
                if improvements >= max_improvements:
                    break
            if improvements >= max_improvements:
                break
            gi += 1
    matches: list[Match] = []
    for i, j in groups:
        if j is None:
            matches.append(Match("boundary", comp[i], side=bd[i][1]))
        else:
            matches.append(Match("pair", comp[i], comp[j]))
    return matches
