"""Behavioural model of the AQEC decoder (Holmes et al., NISQ+ [11]).

AQEC is the closest prior art: an SFQ online decoder where flipped
ancillas find partners *in parallel* through an "agreement" mechanism —
each flipped ancilla proposes to its nearest flipped neighbour within a
growing window, and a pair is corrected when both propose to each other.
QECOOL's stated contrast is that its token serialisation removes the
need for the agreement mechanism and that AQEC handles only the 2-D
problem (Table V: "Directly applicable to 3-D: No").

We re-implement the agreement matching behaviourally to measure its 2-D
accuracy (Table IV lists ~5%); the hardware constants of the NISQ+ paper
that Table V consumes are published here as reference data — we cannot
re-run their SPICE flow, so those numbers are carried, not re-derived
(same substitution rationale as :mod:`repro.sfq.netlist`).
"""

from __future__ import annotations

import numpy as np

from repro.decoders.base import (
    BOUNDARY_EAST,
    BOUNDARY_WEST,
    Coord,
    DecodeResult,
    Decoder,
    Match,
    correction_from_matches,
    defects_of,
)
from repro.surface_code.lattice import PlanarLattice

__all__ = [
    "AQEC_LATENCY_AVG_NS",
    "AQEC_LATENCY_MAX_NS",
    "AQEC_POWER_PER_UNIT_UW",
    "AQEC_PTH_2D",
    "AqecDecoder",
    "aqec_units_per_logical_qubit",
]

# Published NISQ+ / Table V constants (reference data, not re-derived).
AQEC_POWER_PER_UNIT_UW = 13.44
AQEC_LATENCY_MAX_NS = 19.8
AQEC_LATENCY_AVG_NS = 3.93
AQEC_PTH_2D = 0.05


def aqec_units_per_logical_qubit(d: int) -> int:
    """AQEC tiles one hardware unit per physical qubit: ``(2d - 1)^2``."""
    if d < 2:
        raise ValueError(f"code distance must be >= 2, got {d}")
    return (2 * d - 1) ** 2


class AqecDecoder(Decoder):
    """Parallel agreement-based matching (2-D decoder).

    The decoder operates plane by plane: AQEC has no temporal matching
    ("Directly applicable to 3-D: No"), so when handed a multi-layer
    event stack it decodes each layer independently — the pessimistic
    but faithful 3-D extension the paper also assumes when it budgets
    AQEC's 3-D variant at 7x the 2-D hardware.
    """

    name = "aqec"

    def decode(self, lattice: PlanarLattice, events: np.ndarray) -> DecodeResult:
        events = np.asarray(events, dtype=np.uint8)
        if events.ndim == 1:
            events = events[None, :]
        matches: list[Match] = []
        for t in range(events.shape[0]):
            layer_defects = defects_of(events[t][None, :], lattice)
            layer_defects = [(r, c, t) for (r, c, _) in layer_defects]
            matches.extend(self._match_plane(lattice, layer_defects))
        return DecodeResult(
            matches=matches,
            correction=correction_from_matches(lattice, matches),
        )

    # ------------------------------------------------------------------
    def _match_plane(self, lattice: PlanarLattice, defects: list[Coord]) -> list[Match]:
        matches: list[Match] = []
        alive = list(defects)
        max_window = lattice.rows + lattice.cols
        window = 1
        while alive:
            if window > max_window:
                # Window exhausted: whatever remains is isolated from any
                # partner; match each leftover defect to its boundary.
                for d in alive:
                    matches.append(self._boundary_match(lattice, d))
                break
            proposals: dict[Coord, Coord | str] = {}
            for d in alive:
                target = self._propose(lattice, d, alive, window)
                if target is not None:
                    proposals[d] = target
            matched: set[Coord] = set()
            for d, target in proposals.items():
                if d in matched:
                    continue
                if isinstance(target, str):
                    matches.append(Match("boundary", d, side=target))
                    matched.add(d)
                elif proposals.get(target) == d and target not in matched:
                    matches.append(Match("pair", d, target))
                    matched.add(d)
                    matched.add(target)
            if matched:
                alive = [d for d in alive if d not in matched]
                window = 1
            else:
                window += 1
        return matches

    def _propose(
        self,
        lattice: PlanarLattice,
        d: Coord,
        alive: list[Coord],
        window: int,
    ) -> Coord | str | None:
        """Nearest in-window partner, or a boundary side, or None."""
        r, c, _ = d
        best: tuple[int, Coord] | None = None
        for other in alive:
            if other == d:
                continue
            dist = abs(other[0] - r) + abs(other[1] - c)
            if dist <= window and (best is None or (dist, other) < best):
                best = (dist, other)
        west = lattice.west_distance(c)
        east = lattice.east_distance(c)
        b_dist, b_side = (west, BOUNDARY_WEST) if west <= east else (east, BOUNDARY_EAST)
        if b_dist <= window and (best is None or b_dist < best[0]):
            return b_side
        return best[1] if best is not None else None

    def _boundary_match(self, lattice: PlanarLattice, d: Coord) -> Match:
        _, c, _ = d
        west = lattice.west_distance(c)
        east = lattice.east_distance(c)
        side = BOUNDARY_WEST if west <= east else BOUNDARY_EAST
        return Match("boundary", d, side=side)
