"""Shared decoder types and the match-to-correction projection.

All decoders in this package — QECOOL and the baselines — consume a stack
of detection events over the 3-D (row, column, time) lattice and produce a
set of :class:`Match` objects.  Matches project onto data-qubit
corrections in the standard way:

- a **pair** match between defects at ``(r1, c1, t1)`` and ``(r2, c2, t2)``
  flips the data qubits on an L-shaped spatial path between the two
  ancillas (the temporal component is a measurement error and needs no
  data correction),
- a **boundary** match flips the data qubits from the ancilla to the named
  (west/east) boundary.

The 3-D weight of a match is its Manhattan length: spatial hops plus
temporal hops, each costing 1 — the metric of the paper's spike race.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.surface_code.lattice import PlanarLattice

__all__ = [
    "BOUNDARY_EAST",
    "BOUNDARY_WEST",
    "Coord",
    "DecodeResult",
    "Decoder",
    "Match",
    "correction_from_matches",
    "defects_of",
    "match_weight",
    "total_weight",
]

Coord = tuple[int, int, int]
"""Defect coordinate ``(row, column, time-layer)``."""

BOUNDARY_WEST = "west"
BOUNDARY_EAST = "east"


@dataclass(frozen=True)
class Match:
    """One matching decision.

    ``kind`` is ``"pair"`` (two defects) or ``"boundary"`` (one defect
    matched to the west or east boundary).  For boundary matches ``b`` is
    ``None`` and ``side`` names the boundary.
    """

    kind: str
    a: Coord
    b: Coord | None = None
    side: str | None = None

    def __post_init__(self) -> None:
        if self.kind == "pair":
            if self.b is None or self.side is not None:
                raise ValueError("pair match needs b and no side")
        elif self.kind == "boundary":
            if self.b is not None or self.side not in (BOUNDARY_WEST, BOUNDARY_EAST):
                raise ValueError("boundary match needs side and no b")
        else:
            raise ValueError(f"unknown match kind {self.kind!r}")

    @property
    def vertical_extent(self) -> int:
        """Temporal span of the match (0 for boundary matches).

        Fig. 4(b) reports the proportion of matches whose vertical extent
        is >= 3 planes.
        """
        if self.kind != "pair":
            return 0
        return abs(self.a[2] - self.b[2])

    def endpoints(self) -> list[Coord]:
        """The defect coordinates this match consumes."""
        return [self.a] if self.b is None else [self.a, self.b]


def match_weight(lattice: PlanarLattice, match: Match) -> int:
    """3-D Manhattan weight of a match."""
    r1, c1, t1 = match.a
    if match.kind == "boundary":
        if match.side == BOUNDARY_WEST:
            return lattice.west_distance(c1)
        return lattice.east_distance(c1)
    r2, c2, t2 = match.b
    return abs(r1 - r2) + abs(c1 - c2) + abs(t1 - t2)


def total_weight(lattice: PlanarLattice, matches: list[Match]) -> int:
    """Total 3-D Manhattan weight of a matching."""
    return sum(match_weight(lattice, m) for m in matches)


def correction_from_matches(lattice: PlanarLattice, matches: list[Match]) -> np.ndarray:
    """Project matches onto a data-qubit correction vector.

    The temporal component of pair matches is dropped (measurement errors
    need no data correction); the spatial component follows the same
    L-shaped routing the spike/syndrome signals take in hardware.
    """
    touched: list[int] = []
    # The memoised tuple variants (one shared tuple per endpoint pair)
    # skip the defensive list copy of the public path methods — this
    # projection runs once per decode window on the online hot path.
    pair_path = lattice._pair_path
    boundary_path = lattice._boundary_path
    for match in matches:
        r1, c1, _ = match.a
        if match.kind == "boundary":
            touched.extend(boundary_path(r1, c1, match.side))
        else:
            r2, c2, _ = match.b
            touched.extend(pair_path((r1, c1), (r2, c2)))
    # XOR of all paths == parity of how often each qubit is crossed.
    counts = np.bincount(touched, minlength=lattice.n_data)
    return (counts & 1).astype(np.uint8)


def defects_of(events: np.ndarray, lattice: PlanarLattice) -> list[Coord]:
    """Defect coordinates of an event stack, in time-major scan order."""
    events = np.asarray(events, dtype=np.uint8)
    if events.ndim == 1:
        events = events[None, :]
    if events.shape[1] != lattice.n_ancillas:
        raise ValueError(
            f"events last dim must be {lattice.n_ancillas}, got {events.shape[1]}"
        )
    out: list[Coord] = []
    for t in range(events.shape[0]):
        for a in np.flatnonzero(events[t]):
            r, c = lattice.ancilla_coords(int(a))
            out.append((r, c, t))
    return out


@dataclass
class DecodeResult:
    """Output of one decode call.

    Attributes
    ----------
    matches:
        The matching decisions.
    correction:
        Data-qubit correction vector (length ``n_data``).
    cycles:
        Total decoder execution cycles, when the decoder models them
        (QECOOL engine); 0 otherwise.
    layer_cycles:
        Per-layer execution cycle counts (Table III's population), when
        modelled.
    """

    matches: list[Match]
    correction: np.ndarray
    cycles: int = 0
    layer_cycles: list[int] = field(default_factory=list)

    @property
    def n_matches(self) -> int:
        """Number of matching decisions made."""
        return len(self.matches)


class Decoder(ABC):
    """Interface every decoder implements.

    ``decode(lattice, events)`` takes a ``(n_layers, n_ancillas)`` stack
    of detection events (a single layer may be passed as a 1-D vector for
    the 2-D / code-capacity setting) and returns a :class:`DecodeResult`
    whose correction's syndrome, XORed over layers, equals the total
    event parity per ancilla — i.e. a *valid* correction.
    """

    name = "decoder"

    @abstractmethod
    def decode(self, lattice: PlanarLattice, events: np.ndarray) -> DecodeResult:
        """Decode an event stack into matches and a correction."""

    def decode_code_capacity(self, lattice: PlanarLattice, syndrome: np.ndarray) -> DecodeResult:
        """Decode a single perfectly-measured syndrome (2-D setting)."""
        return self.decode(lattice, np.asarray(syndrome, dtype=np.uint8)[None, :])

    def decode_batch(
        self, lattice: PlanarLattice, events: np.ndarray
    ) -> list[DecodeResult]:
        """Decode a whole batch of event stacks.

        ``events`` has shape ``(shots, n_layers, n_ancillas)``; returns
        one :class:`DecodeResult` per shot, identical to calling
        :meth:`decode` per stack.  The default is exactly that loop;
        decoders with a shot-major fast path (the QECOOL batch engine)
        override it — always bit-identically, which is what lets the
        Monte-Carlo tasks call it unconditionally.
        """
        events = np.asarray(events, dtype=np.uint8)
        if events.ndim != 3:
            raise ValueError(
                f"decode_batch expects (shots, layers, ancillas), got"
                f" shape {events.shape}"
            )
        return [self.decode(lattice, stack) for stack in events]
