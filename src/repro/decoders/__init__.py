"""Decoder framework and baseline decoders.

- :mod:`repro.decoders.base` — shared types (:class:`Match`,
  :class:`DecodeResult`, the :class:`Decoder` interface) and the
  match-to-correction projection used by every decoder,
- :mod:`repro.decoders.mwpm` — minimum-weight perfect matching baseline,
- :mod:`repro.decoders.union_find` — Union-Find decoder
  (Delfosse–Nickerson) baseline,
- :mod:`repro.decoders.greedy` — Drake–Hougardy greedy matching, the
  approximation QECOOL's spike policy is inspired by,
- :mod:`repro.decoders.aqec` — behavioural model of the AQEC (NISQ+)
  agreement decoder used in Tables IV and V,
- :mod:`repro.decoders.exact` — brute-force optimal matching for tests.
"""

from repro.decoders.aqec import AqecDecoder
from repro.decoders.base import (
    BOUNDARY_EAST,
    BOUNDARY_WEST,
    DecodeResult,
    Decoder,
    Match,
    correction_from_matches,
    defects_of,
    match_weight,
    total_weight,
)
from repro.decoders.exact import brute_force_matching
from repro.decoders.greedy import GreedyMatchingDecoder
from repro.decoders.ml import MaximumLikelihoodDecoder
from repro.decoders.mwpm import MwpmDecoder
from repro.decoders.union_find import UnionFindDecoder

__all__ = [
    "AqecDecoder",
    "BOUNDARY_EAST",
    "BOUNDARY_WEST",
    "DecodeResult",
    "Decoder",
    "GreedyMatchingDecoder",
    "Match",
    "MaximumLikelihoodDecoder",
    "MwpmDecoder",
    "UnionFindDecoder",
    "brute_force_matching",
    "correction_from_matches",
    "defects_of",
    "match_weight",
    "total_weight",
]
