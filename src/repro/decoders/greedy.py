"""Greedy minimum matching (Drake–Hougardy style) baseline.

QECOOL's spike policy is "inspired by the greedy algorithm of
minimum-weight perfect matching problems [5]" (Drake & Hougardy 2003).
This decoder is the plain software version of that idea: repeatedly
commit the globally cheapest available option — the closest defect pair,
or a defect's boundary match — until every defect is consumed.

It differs from QECOOL in ordering only: QECOOL serialises sinks in
token-scan order inside each growing hop budget, while this decoder uses
a true global priority queue.  Comparing the two isolates the accuracy
cost of QECOOL's hardware-friendly sequential sink allocation (an
ablation reported alongside Table IV).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.decoders.base import (
    BOUNDARY_EAST,
    BOUNDARY_WEST,
    Coord,
    DecodeResult,
    Decoder,
    Match,
    correction_from_matches,
    defects_of,
)
from repro.decoders.mwpm import pair_distance
from repro.surface_code.lattice import PlanarLattice

__all__ = ["GreedyMatchingDecoder"]


class GreedyMatchingDecoder(Decoder):
    """Globally-greedy minimum matching over defects and boundaries."""

    name = "greedy"

    def decode(self, lattice: PlanarLattice, events: np.ndarray) -> DecodeResult:
        defects = defects_of(events, lattice)
        matches = self.match_defects(lattice, defects)
        return DecodeResult(
            matches=matches,
            correction=correction_from_matches(lattice, matches),
        )

    def match_defects(self, lattice: PlanarLattice, defects: list[Coord]) -> list[Match]:
        """Greedy matching of a defect list (exposed for testing)."""
        n = len(defects)
        if n == 0:
            return []
        # Heap entries: (weight, boundary?, i, j).  Pairs beat boundary
        # matches of equal weight — the same tie-break the paper's
        # Boundary Units implement by answering half a cycle late.
        heap: list[tuple[int, int, int, int]] = []
        bd: list[tuple[int, str]] = []
        for i, d in enumerate(defects):
            west = lattice.west_distance(d[1])
            east = lattice.east_distance(d[1])
            bd.append((west, BOUNDARY_WEST) if west <= east else (east, BOUNDARY_EAST))
            heap.append((bd[i][0], 1, i, -1))
            for j in range(i):
                w = pair_distance(defects[i], defects[j])
                if w < bd[i][0] + bd[j][0]:
                    heap.append((w, 0, j, i))
        heapq.heapify(heap)
        alive = [True] * n
        matches: list[Match] = []
        while heap:
            _, _, i, j = heapq.heappop(heap)
            if not alive[i]:
                continue
            if j == -1:
                matches.append(Match("boundary", defects[i], side=bd[i][1]))
                alive[i] = False
            elif alive[j]:
                matches.append(Match("pair", defects[i], defects[j]))
                alive[i] = alive[j] = False
        return matches
