"""Exact maximum-likelihood decoder for tiny codes (test oracle).

For a single perfectly-measured round, the optimal decoder picks the
logical class (trivial vs logical) whose total probability over all
consistent error patterns is larger.  That sum is tractable only for
tiny lattices — we enumerate all ``2^n_data`` patterns once per
distance, bucket them by (syndrome, logical-cut parity), and cache the
class weights as polynomial coefficients in the error count, so any
``p`` evaluates instantly.

Use: an upper bound on every matching decoder's 2-D accuracy in tests
(nothing may beat maximum likelihood), and a measure of how far QECOOL's
greedy matching sits from the information-theoretic optimum at d = 3.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.decoders.base import DecodeResult, Decoder
from repro.surface_code.lattice import PlanarLattice

__all__ = ["MaximumLikelihoodDecoder"]

_MAX_DATA_QUBITS = 16  # 2^16 patterns; d=3 has 13 data qubits


@lru_cache(maxsize=4)
def _class_tables(d: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-syndrome class data for distance ``d``.

    Returns ``(weights0, weights1, representative)`` where
    ``weights{k}[s, w]`` counts error patterns of Hamming weight ``w``
    with syndrome ``s`` and cut parity ``k``, and ``representative[s]``
    is the lowest-weight pattern index for syndrome ``s`` with parity 0
    (or parity 1 if no parity-0 pattern is lighter — the actual choice
    is made per ``p`` at decode time).
    """
    lattice = PlanarLattice(d)
    n = lattice.n_data
    if n > _MAX_DATA_QUBITS:
        raise ValueError(
            f"maximum-likelihood enumeration infeasible for d={d}"
            f" ({n} data qubits > {_MAX_DATA_QUBITS})"
        )
    n_syndromes = 1 << lattice.n_ancillas
    weights = np.zeros((2, n_syndromes, n + 1), dtype=np.float64)
    best = np.full((2, n_syndromes), -1, dtype=np.int64)
    best_weight = np.full((2, n_syndromes), n + 1, dtype=np.int64)

    h = lattice.parity_matrix
    syndrome_bits = np.array(
        [int("".join(map(str, h[:, q][::-1])), 2) for q in range(n)],
        dtype=np.int64,
    )
    cut_bits = lattice.logical_cut.astype(np.int64)

    # Gray-code enumeration: each step flips one qubit.
    pattern = 0
    syndrome = 0
    parity = 0
    weight = 0
    weights[0, 0, 0] += 1
    best[0, 0] = 0
    best_weight[0, 0] = 0
    for i in range(1, 1 << n):
        q = (i & -i).bit_length() - 1
        pattern ^= 1 << q
        syndrome ^= int(syndrome_bits[q])
        parity ^= int(cut_bits[q])
        weight += 1 if (pattern >> q) & 1 else -1
        weights[parity, syndrome, weight] += 1
        if weight < best_weight[parity, syndrome]:
            best_weight[parity, syndrome] = weight
            best[parity, syndrome] = pattern
    return weights, best, best_weight


class MaximumLikelihoodDecoder(Decoder):
    """Exact ML decoder for single-round (code-capacity) decoding, d <= 3.

    ``decode`` accepts only a single layer; the 3-D setting is out of
    enumeration reach and raises.
    """

    name = "maximum-likelihood"

    def __init__(self, p: float = 0.05):
        if not 0.0 < p < 0.5:
            raise ValueError(f"p must be in (0, 0.5), got {p}")
        self.p = p

    def decode(self, lattice: PlanarLattice, events: np.ndarray) -> DecodeResult:
        events = np.asarray(events, dtype=np.uint8)
        if events.ndim == 2:
            if events.shape[0] != 1:
                raise ValueError("ML decoder handles a single layer only")
            events = events[0]
        weights, best, best_weight = _class_tables(lattice.d)
        syndrome = 0
        for a in np.flatnonzero(events):
            syndrome |= 1 << int(a)
        n = lattice.n_data
        powers = np.array(
            [self.p ** w * (1 - self.p) ** (n - w) for w in range(n + 1)]
        )
        likelihood = weights[:, syndrome, :] @ powers
        parity = int(np.argmax(likelihood))
        if best[parity, syndrome] < 0:
            # No pattern of this parity matches the syndrome (cannot
            # happen for valid syndromes of a connected code, but guard).
            parity ^= 1
        pattern = int(best[parity, syndrome])
        correction = np.zeros(n, dtype=np.uint8)
        for q in range(n):
            if (pattern >> q) & 1:
                correction[q] = 1
        return DecodeResult(matches=[], correction=correction)
