"""Brute-force optimal matching, for validating MWPM on small instances.

Enumerates every way to partition a defect set into pairs and boundary
matches and returns a minimum-total-weight solution.  Exponential — only
use with at most ~10 defects (tests and cross-checks).
"""

from __future__ import annotations

from functools import lru_cache

from repro.decoders.base import (
    BOUNDARY_EAST,
    BOUNDARY_WEST,
    Coord,
    Match,
)
from repro.surface_code.lattice import PlanarLattice

__all__ = ["brute_force_matching"]

_MAX_DEFECTS = 14


def brute_force_matching(
    lattice: PlanarLattice, defects: list[Coord]
) -> tuple[float, list[Match]]:
    """Optimal (minimum total 3-D Manhattan weight) matching of ``defects``.

    Every defect is matched either to another defect or to its nearer
    (west/east) boundary.  Returns ``(total_weight, matches)``.
    """
    if len(defects) > _MAX_DEFECTS:
        raise ValueError(
            f"brute force limited to {_MAX_DEFECTS} defects, got {len(defects)}"
        )
    defects = list(defects)

    def pair_weight(i: int, j: int) -> int:
        (r1, c1, t1), (r2, c2, t2) = defects[i], defects[j]
        return abs(r1 - r2) + abs(c1 - c2) + abs(t1 - t2)

    def boundary_choice(i: int) -> tuple[int, str]:
        _, c, _ = defects[i]
        west = lattice.west_distance(c)
        east = lattice.east_distance(c)
        if west <= east:
            return west, BOUNDARY_WEST
        return east, BOUNDARY_EAST

    @lru_cache(maxsize=None)
    def solve(remaining: frozenset[int]) -> tuple[float, tuple[tuple[str, int, int | None], ...]]:
        if not remaining:
            return 0.0, ()
        rest = sorted(remaining)
        first = rest[0]
        # Option: boundary.
        b_weight, _ = boundary_choice(first)
        best_w, best_plan = solve(remaining - {first})
        best = (b_weight + best_w, (("boundary", first, None),) + best_plan)
        # Option: pair with any other remaining defect.
        for j in rest[1:]:
            sub_w, sub_plan = solve(remaining - {first, j})
            cand = (pair_weight(first, j) + sub_w, (("pair", first, j),) + sub_plan)
            if cand[0] < best[0]:
                best = cand
        return best

    weight, plan = solve(frozenset(range(len(defects))))
    solve.cache_clear()
    matches: list[Match] = []
    for kind, i, j in plan:
        if kind == "pair":
            matches.append(Match("pair", defects[i], defects[j]))
        else:
            _, side = boundary_choice(i)
            matches.append(Match("boundary", defects[i], side=side))
    return weight, matches
